package streamagg

// The serving layer's front door. The paper's performance story rests on
// ingesting *minibatches*: the parallel update algorithms are linear-work
// and polylog-depth per batch, so per-item overhead amortizes only when
// batches are well-sized. A real deployment, however, receives an
// unbounded stream of single updates and small request-sized batches.
// Ingestor closes that gap: it is an asynchronous minibatcher that
// accepts updates from any number of producers (MPSC), coalesces them in
// a bounded queue, and flushes adaptive minibatches into a sink — on a
// size threshold under load, on a max-latency timer when traffic is
// light, whichever fires first. Under bursts the flushed batches grow
// beyond the threshold (everything queued goes out in one ProcessBatch
// call), which is exactly the work-efficient regime the paper's cost
// model rewards.
//
// Backpressure is selectable: block producers until space frees (the
// default, lossless), reject with ErrOverloaded (shed load at the edge,
// let the client retry), or drop with a counter (bounded staleness for
// metrics-grade streams). Flush and Close implement the drain protocol;
// Checkpoint and Restore quiesce the batcher around the sink's
// MarshalBinary/UnmarshalBinary so a checkpoint always captures a clean
// minibatch boundary that includes everything enqueued before the call.

import (
	"context"
	"encoding"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/metrics"
	"repro/persist"
	"repro/trace"
)

// ErrOverloaded reports an ingest refused because the queue is full and
// the backpressure policy is BackpressureReject.
var ErrOverloaded = errors.New("streamagg: ingest queue full")

// ErrClosed reports an operation on a closed Ingestor.
var ErrClosed = errors.New("streamagg: ingestor closed")

// BatchProcessor is the sink side of the Ingestor: anything that ingests
// minibatches. Every Aggregate satisfies it, and so does *Pipeline.
type BatchProcessor interface {
	ProcessBatch(items []uint64) error
}

// Backpressure selects what PutBatch does when the queue is full.
type Backpressure int

const (
	// BackpressureBlock parks the producer until the worker frees
	// space. Lossless; converts overload into producer latency.
	BackpressureBlock Backpressure = iota
	// BackpressureReject refuses the whole batch with ErrOverloaded,
	// leaving the queue unchanged. The caller decides to retry or shed.
	BackpressureReject
	// BackpressureDrop accepts what fits and silently discards the
	// rest, counting discards in Stats().Dropped.
	BackpressureDrop
)

// String returns the flag-friendly name ("block", "reject", "drop").
func (b Backpressure) String() string {
	switch b {
	case BackpressureBlock:
		return "block"
	case BackpressureReject:
		return "reject"
	case BackpressureDrop:
		return "drop"
	}
	return fmt.Sprintf("Backpressure(%d)", int(b))
}

// ParseBackpressure maps "block", "reject", or "drop" to the policy.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return BackpressureBlock, nil
	case "reject":
		return BackpressureReject, nil
	case "drop":
		return BackpressureDrop, nil
	}
	return 0, fmt.Errorf("%w: backpressure policy %q (want block, reject, or drop)", ErrBadParam, s)
}

// Ingestor defaults, used when the corresponding option is not given.
const (
	DefaultBatchSize  = 8192
	DefaultMaxLatency = 5 * time.Millisecond
)

// IngestorStats is a point-in-time snapshot of the batcher's counters.
// Enqueued counts items accepted into the queue; Processed counts items
// flushed into the sink; QueueDepth = Enqueued - Processed is what is
// still buffered (including an in-flight batch). SizeFlushes,
// TimerFlushes, and DrainFlushes split Batches by what triggered them.
// BatchSizeLog2[i] counts flushed batches whose size has bit length i,
// i.e. falls in [2^(i-1), 2^i).
type IngestorStats struct {
	Enqueued      int64   `json:"enqueued"`
	Processed     int64   `json:"processed"`
	Dropped       int64   `json:"dropped"`
	Rejected      int64   `json:"rejected"`
	QueueDepth    int64   `json:"queue_depth"`
	Batches       int64   `json:"batches"`
	SizeFlushes   int64   `json:"size_flushes"`
	TimerFlushes  int64   `json:"timer_flushes"`
	DrainFlushes  int64   `json:"drain_flushes"`
	FailedBatches int64   `json:"failed_batches"`
	MaxBatch      int     `json:"max_batch"`
	BatchSizeLog2 []int64 `json:"batch_size_log2"`
}

// Ingestor wraps a BatchProcessor behind an asynchronous bounded MPSC
// queue. Producers call Put/PutBatch from any number of goroutines; a
// single worker goroutine coalesces the queue into minibatches and feeds
// the sink, so the sink itself never sees concurrent ProcessBatch calls
// from this Ingestor. Construct with NewIngestor; the zero value is not
// usable.
type Ingestor struct {
	sink       BatchProcessor
	batchSize  int
	maxLatency time.Duration
	queueCap   int
	policy     Backpressure

	mu   sync.Mutex
	cond *sync.Cond    // broadcast: space freed, batch processed, worker exit
	wake chan struct{} // worker wakeup, capacity 1
	now  func() time.Time

	buf     []uint64  // pending items, appended by producers
	spare   []uint64  // recycled buffer for the next fill
	firstAt time.Time // arrival of the oldest buffered item

	// Tracing (WithTracer): batchSC is the trace context of the first
	// sampled producer contributing to the current buffer — the link the
	// flush worker parents its flush/WAL/apply spans onto, carried across
	// the MPSC boundary under mu. Zero when no contributor was sampled;
	// tracer nil when tracing is off (every span call is then a no-op on
	// a nil *trace.Span, allocation-free).
	tracer  *trace.Tracer
	batchSC trace.SpanContext

	inFlight int // items in the batch currently inside the sink

	// Observability: every counter below lives in the metrics registry
	// (reg), and Stats() reads the same instruments the /metrics
	// exposition renders — one source of truth, two views. All of them
	// are atomics, so the flush worker and producers never take an
	// extra lock to count.
	reg           *metrics.Registry
	enqueued      *metrics.Counter
	processed     *metrics.Counter
	dropped       *metrics.Counter
	rejected      *metrics.Counter
	sizeFlushes   *metrics.Counter
	timerFlushes  *metrics.Counter
	drainFlushes  *metrics.Counter
	failedBatches *metrics.Counter
	batchItems    *metrics.Histogram // flushed batch sizes (items, log2)
	flushWait     *metrics.Histogram // oldest item's enqueue→flush wait
	applySeconds  *metrics.Histogram // sink ProcessBatch latency per batch
	maxBatch      int

	flushReq int64 // drain until processed reaches this enqueue mark
	paused   int   // quiesce depth: worker must not start new batches
	closed   bool
	done     bool // worker has drained and exited
	doneCh   chan struct{}
	err      error // first sink failure, sticky

	// Durability (WithDataDir): every flushed minibatch is appended to
	// the WAL before it is applied, and a background snapshotter bounds
	// the log. Nil without WithDataDir.
	store    *persist.Store
	snapMu   sync.Mutex // serializes (capture, WriteSnapshot) pairs: snapshotter vs Restore vs Close
	snapStop chan struct{}
	snapDone chan struct{}
	durOnce  sync.Once
	durErr   error // store teardown error, reported by Close
}

// ingestorOptions is the Option applicability set for NewIngestor,
// mirroring kindUsage for the aggregate kinds.
var ingestorOptions = map[string]bool{
	"WithBatchSize":       true,
	"WithMaxLatency":      true,
	"WithBackpressure":    true,
	"WithQueueCap":        true,
	"WithDataDir":         true,
	"WithFsync":           true,
	"WithSnapshotEvery":   true,
	"WithMetricsRegistry": true,
	"WithTracer":          true,
	"withClock":           true,
}

// NewIngestor wraps sink in an asynchronous minibatcher. It accepts the
// batching subset of the library's functional options — WithBatchSize
// (default 8192), WithMaxLatency (default 5ms), WithBackpressure
// (default BackpressureBlock), WithQueueCap (default 4x the batch size)
// — and rejects aggregate-construction options with ErrBadParam, the
// same centralized validation New applies in reverse.
func NewIngestor(sink BatchProcessor, opts ...Option) (*Ingestor, error) {
	if sink == nil {
		return nil, fmt.Errorf("%w: nil ingest sink", ErrBadParam)
	}
	c := config{
		batchSize:    DefaultBatchSize,
		maxLatency:   DefaultMaxLatency,
		backpressure: BackpressureBlock,
	}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	for name := range c.set {
		if !ingestorOptions[name] {
			return nil, fmt.Errorf("%w: option %s does not apply to Ingestor", ErrBadParam, name)
		}
	}
	if c.queueCap == 0 {
		c.queueCap = 4 * c.batchSize
	}
	if c.queueCap < c.batchSize {
		return nil, fmt.Errorf("%w: queue capacity %d below batch size %d",
			ErrBadParam, c.queueCap, c.batchSize)
	}
	if c.dataDir == "" && (c.set["WithFsync"] || c.set["WithSnapshotEvery"]) {
		return nil, fmt.Errorf("%w: WithFsync and WithSnapshotEvery require WithDataDir", ErrBadParam)
	}
	in := &Ingestor{
		sink:       sink,
		batchSize:  c.batchSize,
		maxLatency: c.maxLatency,
		queueCap:   c.queueCap,
		policy:     c.backpressure,
		tracer:     c.tracer,
		now:        c.clock,
		wake:       make(chan struct{}, 1),
		doneCh:     make(chan struct{}),
	}
	if in.now == nil {
		in.now = time.Now
	}
	in.initMetrics(c.metricsReg)
	in.cond = sync.NewCond(&in.mu)
	if c.dataDir != "" {
		if err := in.openDurable(c); err != nil {
			return nil, err
		}
	}
	go in.worker()
	if in.store != nil {
		in.snapStop = make(chan struct{})
		in.snapDone = make(chan struct{})
		go in.snapshotLoop()
	}
	return in, nil
}

// initMetrics wires the Ingestor's counters into a metrics registry —
// the caller's (WithMetricsRegistry, shared with the serving layer's
// /metrics endpoint) or a private one. Stats() reads these same
// instruments, so the JSON stats and the Prometheus exposition cannot
// diverge. Each Ingestor needs its own registry (or at most one
// Ingestor per registry): the instruments are shared by name.
func (in *Ingestor) initMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	in.reg = reg
	policy := in.policy.String()
	in.enqueued = reg.Counter("streamagg_ingest_enqueued_items_total",
		"Items accepted into the ingest queue.")
	in.processed = reg.Counter("streamagg_ingest_processed_items_total",
		"Items flushed into the sink.")
	in.dropped = reg.Counter("streamagg_ingest_dropped_items_total",
		"Items discarded at a full queue.", "policy", policy)
	in.rejected = reg.Counter("streamagg_ingest_rejected_items_total",
		"Items refused with ErrOverloaded at a full queue.", "policy", policy)
	in.sizeFlushes = reg.Counter("streamagg_ingest_flushes_total",
		"Flushed minibatches by trigger.", "cause", "size")
	in.timerFlushes = reg.Counter("streamagg_ingest_flushes_total",
		"Flushed minibatches by trigger.", "cause", "timer")
	in.drainFlushes = reg.Counter("streamagg_ingest_flushes_total",
		"Flushed minibatches by trigger.", "cause", "drain")
	in.failedBatches = reg.Counter("streamagg_ingest_failed_batches_total",
		"Minibatches whose WAL append or sink apply returned an error.")
	in.batchItems = reg.Histogram("streamagg_ingest_batch_items",
		"Flushed minibatch sizes in items.", metrics.UnitItems)
	in.flushWait = reg.Histogram("streamagg_ingest_flush_wait_seconds",
		"Oldest queued item's wait between enqueue and flush.", metrics.UnitSeconds)
	in.applySeconds = reg.Histogram("streamagg_ingest_apply_seconds",
		"Sink ProcessBatch latency per flushed minibatch.", metrics.UnitSeconds)
	reg.GaugeFunc("streamagg_ingest_queue_depth_items",
		"Items accepted but not yet applied to the sink.", func() float64 {
			d := in.enqueued.Value() - in.processed.Value()
			if d < 0 {
				d = 0
			}
			return float64(d)
		})
}

// MetricsRegistry returns the registry holding this Ingestor's
// instruments (and, for a durable Ingestor, the persist subsystem's).
// The serving layer renders it at GET /metrics.
func (in *Ingestor) MetricsRegistry() *metrics.Registry { return in.reg }

// Tracer returns the tracer recording this Ingestor's batch lifecycle
// spans, or nil without WithTracer. The serving layer shares it across
// layers and exports it at GET /debug/traces.
func (in *Ingestor) Tracer() *trace.Tracer { return in.tracer }

// openDurable opens the data directory and recovers the sink's state —
// newest valid snapshot, then WAL tail replay at the original minibatch
// boundaries — before the worker starts accepting live traffic.
func (in *Ingestor) openDurable(c config) error {
	u, uok := in.sink.(encoding.BinaryUnmarshaler)
	if _, mok := in.sink.(encoding.BinaryMarshaler); !mok || !uok {
		return fmt.Errorf("%w: durable ingest sink %T must support checkpointing", ErrBadParam, in.sink)
	}
	st, err := persist.Open(c.dataDir, persist.Options{
		Fsync:           c.fsync,
		SnapshotRecords: int64(c.snapshotEvery),
		Metrics:         in.reg,
	})
	if err != nil {
		return err
	}
	if snap, ok := st.RecoveredSnapshot(); ok {
		if err := u.UnmarshalBinary(snap); err != nil {
			st.Close()
			return fmt.Errorf("streamagg: restoring snapshot from %s: %w", c.dataDir, err)
		}
	}
	if err := st.Replay(func(items []uint64) error {
		// Mirror the live path exactly: a batch whose apply fails was
		// logged, partially applied (Pipeline fan-out), and recorded as
		// the sticky error before the crash — deterministic replay
		// reproduces that state. Failing recovery instead would turn
		// one bad batch into a permanent startup crash loop.
		if err := in.sink.ProcessBatch(items); err != nil && in.err == nil {
			in.err = err
		}
		return nil
	}); err != nil {
		st.Close()
		return err
	}
	in.store = st
	return nil
}

// noteSpanLocked links the current buffer to the first sampled
// producer's trace. Caller holds mu and has just appended items.
func (in *Ingestor) noteSpanLocked(sc trace.SpanContext) {
	if sc.Sampled && !in.batchSC.IsValid() {
		in.batchSC = sc
	}
}

// signal wakes the worker if it is parked (non-blocking; a pending token
// already guarantees a wakeup).
func (in *Ingestor) signal() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// appendLocked accepts items into the queue. Caller holds mu and has
// verified they fit.
//
//agglint:hotpath
func (in *Ingestor) appendLocked(items []uint64) {
	if len(in.buf) == 0 {
		in.firstAt = in.now()
	}
	in.buf = append(in.buf, items...)
	in.enqueued.Add(int64(len(items)))
	in.signal()
}

// Put enqueues a single update without building a batch slice — the
// high-rate producer path stays allocation-free (the queue buffer is
// recycled between flushes, so appends only grow it until the working
// size is reached). Semantics match PutBatch with one item.
//
//agglint:hotpath
func (in *Ingestor) Put(item uint64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if in.closed {
			return ErrClosed
		}
		if in.queueCap-len(in.buf)-in.inFlight >= 1 {
			if len(in.buf) == 0 {
				in.firstAt = in.now()
			}
			in.buf = append(in.buf, item)
			in.enqueued.Add(1)
			in.signal()
			return nil
		}
		switch in.policy {
		case BackpressureReject:
			in.rejected.Add(1)
			return ErrOverloaded
		case BackpressureDrop:
			in.dropped.Add(1)
			return nil
		default: // BackpressureBlock
			in.cond.Wait()
		}
	}
}

// PutBatch enqueues a batch of updates, coalescing it with whatever else
// is queued; the items slice is copied and may be reused by the caller.
// It returns how many items were accepted. When the queue lacks space
// the configured Backpressure policy decides: block until the worker
// frees space (accepts everything), reject everything with ErrOverloaded
// (a batch larger than the whole queue capacity is always rejected under
// that policy), or accept what fits and drop the rest. After Close,
// PutBatch returns ErrClosed (under BackpressureBlock a producer parked
// at close time may have had a prefix of its batch accepted and drained
// before the error; the count reports it).
func (in *Ingestor) PutBatch(items []uint64) (int, error) {
	return in.PutBatchContext(context.Background(), items)
}

// PutBatchContext is PutBatch with cancellation: a producer parked by
// BackpressureBlock unparks with the context's error when ctx is
// canceled (the count reports any prefix already accepted, which the
// worker will still flush). Serving handlers use this so a disconnected
// client does not leave its goroutine parked on a full queue.
func (in *Ingestor) PutBatchContext(ctx context.Context, items []uint64) (int, error) {
	return in.PutBatchSpan(ctx, items, trace.SpanContext{})
}

// PutBatchSpan is PutBatchContext carrying the producer's trace
// context across the MPSC queue boundary: when sc belongs to a sampled
// trace, the minibatch these items coalesce into links its flush, WAL
// append, and sink apply spans onto that trace. Batches coalesce many
// producers' items, so the link is first-sampled-wins — one causal
// thread per minibatch, not one per item. A zero sc (the unsampled or
// tracing-off case) costs nothing.
func (in *Ingestor) PutBatchSpan(ctx context.Context, items []uint64, sc trace.SpanContext) (int, error) {
	if len(items) == 0 {
		return 0, nil
	}
	// Registered lazily, only when this producer is actually about to
	// park — the common has-space path pays nothing for cancellation.
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
	}()
	accepted := 0
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if in.closed {
			return accepted, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return accepted, err
		}
		// The in-flight batch still counts against the cap: WithQueueCap
		// bounds accepted-but-unapplied items, not just the resting buffer.
		free := in.queueCap - len(in.buf) - in.inFlight
		if len(items) <= free {
			in.appendLocked(items)
			in.noteSpanLocked(sc)
			return accepted + len(items), nil
		}
		switch in.policy {
		case BackpressureReject:
			in.rejected.Add(int64(len(items)))
			return accepted, ErrOverloaded
		case BackpressureDrop:
			if free > 0 {
				in.appendLocked(items[:free])
				in.noteSpanLocked(sc)
			}
			in.dropped.Add(int64(len(items) - free))
			return accepted + free, nil
		default: // BackpressureBlock
			if free > 0 {
				in.appendLocked(items[:free])
				in.noteSpanLocked(sc)
				items = items[free:]
				accepted += free
			}
			if stopWatch == nil && ctx.Done() != nil {
				stopWatch = context.AfterFunc(ctx, func() {
					in.mu.Lock()
					in.cond.Broadcast()
					in.mu.Unlock()
				})
			}
			in.cond.Wait()
		}
	}
}

// worker is the single consumer: it waits for work, decides when the
// queued items form a minibatch (size threshold, latency deadline, drain
// request, or shutdown), and feeds the sink.
func (in *Ingestor) worker() {
	// One reusable timer for the latency wait (Go 1.23+ semantics: Stop
	// and Reset need no channel drain).
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		in.mu.Lock()
		if in.paused > 0 {
			in.mu.Unlock()
			<-in.wake
			continue
		}
		n := len(in.buf)
		if n == 0 {
			if in.closed {
				in.done = true
				in.cond.Broadcast()
				in.mu.Unlock()
				close(in.doneCh)
				return
			}
			in.mu.Unlock()
			<-in.wake
			continue
		}
		var cause *metrics.Counter
		var causeName string
		switch {
		case n >= in.batchSize:
			cause, causeName = in.sizeFlushes, "size"
		case in.closed || in.flushReq > in.processed.Value():
			cause, causeName = in.drainFlushes, "drain"
		default:
			wait := in.maxLatency - in.now().Sub(in.firstAt)
			if wait > 0 {
				in.mu.Unlock()
				timer.Reset(wait)
				select {
				case <-in.wake:
					timer.Stop()
				case <-timer.C:
				}
				continue
			}
			cause, causeName = in.timerFlushes, "timer"
		}
		batch := in.buf
		batchSC := in.batchSC
		in.batchSC = trace.SpanContext{}
		in.buf = in.spare[:0]
		in.spare = nil
		in.inFlight = len(batch)
		cause.Inc()
		wait := in.now().Sub(in.firstAt)
		in.flushWait.ObserveDuration(wait)
		in.cond.Broadcast() // space freed: unpark blocked producers
		in.mu.Unlock()

		// The flush span joins the first sampled contributor's trace
		// (Child never roots one of its own) — on the unsampled path
		// every span here is nil and the calls are free.
		span := in.tracer.Child("ingest.flush", batchSC)
		span.SetInt("items", int64(len(batch)))
		span.SetAttr("cause", causeName)
		span.SetInt("queue_wait_us", wait.Microseconds())
		err := in.commit(batch, span.Context())
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()

		in.mu.Lock()
		in.processed.Add(int64(len(batch)))
		in.inFlight = 0
		if len(batch) > in.maxBatch {
			in.maxBatch = len(batch)
		}
		in.batchItems.Observe(uint64(len(batch)))
		if err != nil {
			in.failedBatches.Inc()
			if in.err == nil {
				in.err = err
			}
		}
		in.spare = batch[:0]
		in.cond.Broadcast() // batch done: unpark Flush/quiesce waiters
		in.mu.Unlock()
	}
}

// commit is the worker's apply step: with durability, the minibatch is
// WAL-appended (and, under FsyncAlways, on stable storage) before the
// sink sees it — a batch whose effects are queryable is always
// recoverable. An append failure leaves the batch unapplied rather than
// applied-but-unlogged.
//
//agglint:hotpath
func (in *Ingestor) commit(batch []uint64, parent trace.SpanContext) error {
	if in.store != nil {
		ws := in.tracer.Child("persist.wal_append", parent)
		seq, err := in.store.Append(batch)
		if err != nil {
			ws.SetAttr("error", err.Error())
			ws.End()
			return err
		}
		ws.SetInt("seq", int64(seq))
		ws.SetInt("items", int64(len(batch)))
		ws.End()
	}
	as := in.tracer.Child("sink.apply", parent)
	as.SetInt("items", int64(len(batch)))
	start := in.now()
	err := in.sink.ProcessBatch(batch)
	in.applySeconds.ObserveDuration(in.now().Sub(start))
	if err != nil {
		as.SetAttr("error", err.Error())
	}
	as.End()
	return err
}

// snapshotLoop is the background snapshotter: when the store has
// accumulated enough WAL since the last snapshot, capture the sink at a
// quiesced minibatch boundary and install it, letting the store reclaim
// the sealed segments behind it.
func (in *Ingestor) snapshotLoop() {
	defer close(in.snapDone)
	for {
		select {
		case <-in.snapStop:
			return
		case <-in.store.SnapshotTrigger():
			// snapMu keeps the (capture, write) pair atomic against a
			// concurrent Restore: without it, a pre-restore capture
			// could be installed over the restore's own snapshot at the
			// same WAL position, silently undoing the restore on the
			// next recovery.
			in.snapMu.Lock()
			data, seq, err := in.DurableCheckpoint()
			if err == nil {
				err = in.store.WriteSnapshot(data, seq)
			}
			in.snapMu.Unlock()
			if err != nil {
				// Best-effort: the WAL still holds everything; surface
				// through Stats and retry at the next trigger.
				in.store.NoteSnapshotFailure(err)
			}
		}
	}
}

// drainLocked requests a flush of everything enqueued so far and waits
// until the worker has pushed it into the sink. Caller holds mu.
func (in *Ingestor) drainLocked() {
	target := in.enqueued.Value()
	if target > in.flushReq {
		in.flushReq = target
	}
	in.signal()
	for in.processed.Value() < target && !in.done {
		in.cond.Wait()
	}
}

// Flush drains: every item enqueued before the call is processed into
// the sink before Flush returns (items arriving during the drain may or
// may not be included). It returns the first sink error seen so far, if
// any (sticky; also returned by Close).
func (in *Ingestor) Flush() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.drainLocked()
	return in.err
}

// Close drains the queue, stops the worker, and releases any blocked
// producers (their remaining items are refused with ErrClosed). With
// durability it then writes a final snapshot at the drained boundary —
// so a clean restart replays nothing — and closes the store. It is
// idempotent and returns the first sink error seen over the Ingestor's
// lifetime (joined with any store teardown error).
func (in *Ingestor) Close() error {
	in.mu.Lock()
	if !in.closed {
		in.closed = true
		in.cond.Broadcast()
		in.signal()
	}
	in.mu.Unlock()
	<-in.doneCh
	if in.store != nil {
		in.durOnce.Do(in.closeDurable)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return errors.Join(in.err, in.durErr)
}

// closeDurable stops the snapshotter, writes the shutdown snapshot
// (best-effort: on failure the WAL already holds everything the snapshot
// would), and closes the store.
func (in *Ingestor) closeDurable() {
	close(in.snapStop)
	<-in.snapDone
	in.snapMu.Lock()
	defer in.snapMu.Unlock()
	if m, ok := in.sink.(encoding.BinaryMarshaler); ok {
		data, err := m.MarshalBinary()
		if err == nil {
			err = in.store.WriteSnapshot(data, in.store.Position())
		}
		if err != nil {
			in.store.NoteSnapshotFailure(err)
		}
	}
	in.durErr = in.store.Close()
}

// quiesce drains the queue and pauses the worker so the sink is at a
// stable minibatch boundary: no batch is in flight and none will start
// until resume. Every quiesce must be paired with resume.
func (in *Ingestor) quiesce() {
	in.mu.Lock()
	in.drainLocked()
	in.paused++
	for in.inFlight > 0 {
		in.cond.Wait()
	}
	in.mu.Unlock()
}

func (in *Ingestor) resume() {
	in.mu.Lock()
	in.paused--
	in.mu.Unlock()
	in.signal()
}

// Checkpoint drains everything enqueued before the call into the sink,
// then captures the sink's MarshalBinary at that quiesced minibatch
// boundary. Producers may keep enqueueing during the checkpoint; their
// items stay queued until it completes. The sink must implement
// encoding.BinaryMarshaler (every Aggregate and *Pipeline does).
func (in *Ingestor) Checkpoint() ([]byte, error) {
	m, ok := in.sink.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("%w: ingest sink %T cannot checkpoint", ErrBadParam, in.sink)
	}
	in.quiesce()
	defer in.resume()
	return m.MarshalBinary()
}

// DurableCheckpoint is Checkpoint for a durable Ingestor: it captures
// the sink at a quiesced minibatch boundary together with the WAL
// position covering exactly that state — the consistent (envelope, seq)
// pair the snapshot store requires. The background snapshotter uses it;
// it is exported so operators can force a snapshot externally.
func (in *Ingestor) DurableCheckpoint() ([]byte, uint64, error) {
	if in.store == nil {
		return nil, 0, fmt.Errorf("%w: ingestor has no data directory", ErrBadParam)
	}
	m, ok := in.sink.(encoding.BinaryMarshaler)
	if !ok {
		return nil, 0, fmt.Errorf("%w: ingest sink %T cannot checkpoint", ErrBadParam, in.sink)
	}
	in.quiesce()
	defer in.resume()
	data, err := m.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}
	// Quiesced: nothing in flight, so the store's position is exactly
	// the last batch the sink absorbed.
	return data, in.store.Position(), nil
}

// Persist returns the durability store backing this Ingestor, or nil
// when WithDataDir was not given. The serving layer exposes its Stats at
// /v1/persist/stats.
func (in *Ingestor) Persist() *persist.Store { return in.store }

// Restore drains the queue into the (about-to-be-replaced) sink state,
// then atomically restores the sink from a checkpoint while the worker
// is quiesced. Items enqueued after Restore begins are applied on top of
// the restored state. A successful restore also clears the sticky sink
// error — the sink is back at known-good state, so earlier batch
// failures stop poisoning Flush/Close. The sink must implement
// encoding.BinaryUnmarshaler.
func (in *Ingestor) Restore(data []byte) error {
	u, ok := in.sink.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("%w: ingest sink %T cannot restore", ErrBadParam, in.sink)
	}
	// Quiesce alone does not exclude the background snapshotter (both
	// sides may hold the pause concurrently); snapMu does.
	in.snapMu.Lock()
	defer in.snapMu.Unlock()
	in.quiesce()
	defer in.resume()
	if err := u.UnmarshalBinary(data); err != nil {
		return err
	}
	in.mu.Lock()
	in.err = nil
	in.mu.Unlock()
	// The WAL's history no longer leads to the sink's (replaced) state;
	// snapshot the restored state at the current position so recovery
	// starts from it instead of replaying the stale tail over it.
	if in.store != nil {
		if err := in.store.WriteSnapshot(data, in.store.Position()); err != nil {
			in.store.NoteSnapshotFailure(err)
			return fmt.Errorf("streamagg: restore applied but not yet durable: %w", err)
		}
	}
	return nil
}

// Swap captures the sink's state and replaces it with the given
// checkpoint in one quiesced step: the returned bytes hold everything
// the sink had absorbed up to the swap boundary, and the sink continues
// from the replacement — nothing enqueued is lost or double-counted on
// either side of the cut. This is the delta-push reset: a federation
// edge swaps in a pristine checkpoint and ships the captured state,
// which then exists only in the outbound payload. Like Restore, a
// successful swap clears the sticky sink error, and on a durable
// Ingestor the replacement is snapshotted at the current WAL position —
// so a crash after the swap recovers to the replacement, exactly the
// unpushed state.
func (in *Ingestor) Swap(replacement []byte) ([]byte, error) {
	m, mok := in.sink.(encoding.BinaryMarshaler)
	u, uok := in.sink.(encoding.BinaryUnmarshaler)
	if !mok || !uok {
		return nil, fmt.Errorf("%w: ingest sink %T cannot swap state", ErrBadParam, in.sink)
	}
	in.snapMu.Lock()
	defer in.snapMu.Unlock()
	in.quiesce()
	defer in.resume()
	captured, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if err := u.UnmarshalBinary(replacement); err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.err = nil
	in.mu.Unlock()
	if in.store != nil {
		if err := in.store.WriteSnapshot(replacement, in.store.Position()); err != nil {
			in.store.NoteSnapshotFailure(err)
			return captured, fmt.Errorf("streamagg: swap applied but not yet durable: %w", err)
		}
	}
	return captured, nil
}

// ForceSnapshot writes a snapshot of the sink's current quiesced state
// at the matching WAL position, without waiting for the background
// snapshotter's trigger. A no-op (nil) without WithDataDir. The serving
// layer calls it after an out-of-band sink mutation — a federated merge
// applied outside the WAL'd ingest path — so recovery replays the WAL
// tail on top of a state that already includes the mutation.
func (in *Ingestor) ForceSnapshot() error {
	if in.store == nil {
		return nil
	}
	in.snapMu.Lock()
	defer in.snapMu.Unlock()
	data, seq, err := in.DurableCheckpoint()
	if err == nil {
		err = in.store.WriteSnapshot(data, seq)
	}
	if err != nil {
		in.store.NoteSnapshotFailure(err)
	}
	return err
}

// Stats returns a snapshot of the batcher's counters. It reads the
// same registry-backed instruments the /metrics exposition renders, so
// the two views cannot diverge.
func (in *Ingestor) Stats() IngestorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := IngestorStats{
		Enqueued:      in.enqueued.Value(),
		Processed:     in.processed.Value(),
		Dropped:       in.dropped.Value(),
		Rejected:      in.rejected.Value(),
		SizeFlushes:   in.sizeFlushes.Value(),
		TimerFlushes:  in.timerFlushes.Value(),
		DrainFlushes:  in.drainFlushes.Value(),
		FailedBatches: in.failedBatches.Value(),
		MaxBatch:      in.maxBatch,
	}
	s.QueueDepth = s.Enqueued - s.Processed
	s.Batches = s.SizeFlushes + s.TimerFlushes + s.DrainFlushes
	s.BatchSizeLog2, _, _ = in.batchItems.Snapshot()
	return s
}

// QueueDepth reports the items accepted but not yet in the sink.
func (in *Ingestor) QueueDepth() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.enqueued.Value() - in.processed.Value()
}
