package streamagg

import (
	"encoding"
	"errors"
	"testing"

	"repro/internal/workload"
)

// marshaler is the pair of interfaces every aggregate must implement.
type marshaler interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// TestCheckpointRoundTripMidStream: process the first half of a stream,
// checkpoint, restore into a fresh instance, feed both the second half,
// and require identical estimates — the Spark-style recovery contract.
func TestCheckpointRoundTripMidStream(t *testing.T) {
	stream := workload.Zipf(1, 60000, 1.2, 1<<14)
	first := workload.Batches(stream[:30000], 2048)
	second := workload.Batches(stream[30000:], 2048)
	probes := []uint64{0, 1, 2, 3, 10, 100, 5000, 1 << 40}

	t.Run("FreqEstimator", func(t *testing.T) {
		orig, _ := NewFreqEstimator(0.01)
		for _, b := range first {
			orig.ProcessBatch(b)
		}
		restored := &FreqEstimator{}
		roundTrip(t, orig, restored)
		for _, b := range second {
			orig.ProcessBatch(b)
			restored.ProcessBatch(b)
		}
		if orig.StreamLen() != restored.StreamLen() {
			t.Fatal("stream length diverged")
		}
		for _, p := range probes {
			if orig.Estimate(p) != restored.Estimate(p) {
				t.Fatalf("estimate diverged for %d", p)
			}
		}
	})

	t.Run("SlidingFreqEstimator", func(t *testing.T) {
		for _, v := range []SlidingVariant{VariantBasic, VariantSpaceEfficient, VariantWorkEfficient} {
			orig, _ := NewSlidingFreqEstimator(8192, 0.02, v)
			for _, b := range first {
				orig.ProcessBatch(b)
			}
			restored := &SlidingFreqEstimator{}
			roundTrip(t, orig, restored)
			for _, b := range second {
				orig.ProcessBatch(b)
				restored.ProcessBatch(b)
			}
			for _, p := range probes {
				if orig.Estimate(p) != restored.Estimate(p) {
					t.Fatalf("%v: estimate diverged for %d", v, p)
				}
			}
			if orig.TrackedItems() != restored.TrackedItems() {
				t.Fatalf("%v: tracked items diverged", v)
			}
		}
	})

	t.Run("CountMin", func(t *testing.T) {
		orig, _ := NewCountMin(0.001, 0.01, 7)
		for _, b := range first {
			orig.ProcessBatch(b)
		}
		restored := &CountMin{}
		roundTrip(t, orig, restored)
		for _, b := range second {
			orig.ProcessBatch(b)
			restored.ProcessBatch(b)
		}
		for _, p := range probes {
			if orig.Query(p) != restored.Query(p) {
				t.Fatalf("query diverged for %d", p)
			}
		}
		if orig.TotalCount() != restored.TotalCount() {
			t.Fatal("total diverged")
		}
	})

	t.Run("CountSketch", func(t *testing.T) {
		orig, _ := NewCountSketch(0.05, 0.01, 7)
		for _, b := range first {
			orig.ProcessBatch(b)
		}
		restored := &CountSketch{}
		roundTrip(t, orig, restored)
		for _, b := range second {
			orig.ProcessBatch(b)
			restored.ProcessBatch(b)
		}
		for _, p := range probes {
			if orig.Query(p) != restored.Query(p) {
				t.Fatalf("query diverged for %d", p)
			}
		}
	})
}

func TestCheckpointBasicCounterAndSum(t *testing.T) {
	bits := workload.BurstyBits(3, 1<<16, 1000, 0.05, 0.9)
	bb := workload.BitBatches(bits, 1024)
	orig, _ := NewBasicCounter(4096, 0.05)
	for _, b := range bb[:32] {
		orig.ProcessBits(b)
	}
	restored := &BasicCounter{}
	roundTrip(t, orig, restored)
	for _, b := range bb[32:] {
		orig.ProcessBits(b)
		restored.ProcessBits(b)
	}
	if orig.Estimate() != restored.Estimate() {
		t.Fatalf("basic counter diverged: %d vs %d", orig.Estimate(), restored.Estimate())
	}

	vals := workload.Values(4, 1<<15, 1023, 2)
	vb := workload.Batches(vals, 1024)
	os, _ := NewWindowSum(4096, 1023, 0.05)
	for _, b := range vb[:16] {
		if err := os.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	rs := &WindowSum{}
	roundTrip(t, os, rs)
	for _, b := range vb[16:] {
		os.ProcessBatch(b)
		rs.ProcessBatch(b)
	}
	if os.Estimate() != rs.Estimate() {
		t.Fatalf("window sum diverged: %d vs %d", os.Estimate(), rs.Estimate())
	}
}

func TestCheckpointCountMinRange(t *testing.T) {
	orig, _ := NewCountMinRange(12, 0.005, 0.01, 3)
	items := workload.Uniform(5, 20000, 4096)
	orig.ProcessBatch(items)
	restored := &CountMinRange{}
	roundTrip(t, orig, restored)
	for _, probe := range [][2]uint64{{0, 100}, {500, 3000}, {0, 4095}} {
		if orig.RangeCount(probe[0], probe[1]) != restored.RangeCount(probe[0], probe[1]) {
			t.Fatalf("range count diverged on [%d,%d]", probe[0], probe[1])
		}
	}
	if orig.Quantile(0.5) != restored.Quantile(0.5) {
		t.Fatal("quantile diverged")
	}
}

func TestCheckpointKindMismatch(t *testing.T) {
	f, _ := NewFreqEstimator(0.1)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c CountMin
	if err := c.UnmarshalBinary(data); !errors.Is(err, ErrBadParam) {
		t.Fatalf("cross-type restore accepted: %v", err)
	}
}

func TestCheckpointGarbage(t *testing.T) {
	var f FreqEstimator
	if err := f.UnmarshalBinary([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func roundTrip(t *testing.T, src, dst marshaler) {
	t.Helper()
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
}
