package streamagg

// Functional-options construction. New(kind, opts...) is the single
// entry point behind which all parameter validation lives; the legacy
// positional constructors (NewFreqEstimator, NewCountMin, ...) are kept
// as thin wrappers over it. Every validation failure wraps ErrBadParam:
// out-of-range values are rejected by the option itself, options that do
// not apply to the requested kind and missing required options are
// rejected by New.

import (
	"fmt"
	"time"

	"repro/internal/bcount"
	"repro/internal/cms"
	"repro/internal/countsketch"
	"repro/internal/mg"
	"repro/internal/swfreq"
	"repro/internal/wsum"
	"repro/metrics"
	"repro/persist"
	"repro/trace"
)

// config accumulates option values; set tracks which options appeared so
// New can enforce per-kind applicability and requirements.
type config struct {
	window   int64
	epsilon  float64
	delta    float64
	maxValue uint64
	bits     int
	seed     int64
	variant  SlidingVariant
	shards   int

	// Ingestor (serving-layer) knobs; rejected by New, consumed by
	// NewIngestor.
	batchSize    int
	maxLatency   time.Duration
	queueCap     int
	backpressure Backpressure

	// Durability (persist subsystem) knobs, also Ingestor-only.
	dataDir       string
	fsync         persist.Fsync
	snapshotEvery int

	// Observability: the registry the Ingestor (and its persist store)
	// publishes instruments to; nil means a private registry. The tracer
	// records the batch lifecycle as spans; nil disables tracing. The
	// clock is a test seam for the latency-deadline path.
	metricsReg *metrics.Registry
	tracer     *trace.Tracer
	clock      func() time.Time

	set map[string]bool
}

func (c *config) mark(name string) {
	if c.set == nil {
		c.set = make(map[string]bool)
	}
	c.set[name] = true
}

// Option configures New. Options validate their own value ranges.
type Option func(*config) error

// WithWindow sets the sliding-window size n >= 1 (BasicCounter,
// WindowSum, SlidingFreq; required for all three).
func WithWindow(n int64) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: window size %d (want >= 1)", ErrBadParam, n)
		}
		c.window = n
		c.mark("WithWindow")
		return nil
	}
}

// WithEpsilon sets the error parameter in (0, 1] (all kinds;
// default 0.01).
func WithEpsilon(epsilon float64) Option {
	return func(c *config) error {
		if epsilon <= 0 || epsilon > 1 {
			return fmt.Errorf("%w: epsilon %v (want in (0, 1])", ErrBadParam, epsilon)
		}
		c.epsilon = epsilon
		c.mark("WithEpsilon")
		return nil
	}
}

// WithDelta sets the failure probability in (0, 1) (CountMin,
// CountMinRange, CountSketch; default 0.01).
func WithDelta(delta float64) Option {
	return func(c *config) error {
		if delta <= 0 || delta >= 1 {
			return fmt.Errorf("%w: delta %v (want in (0, 1))", ErrBadParam, delta)
		}
		c.delta = delta
		c.mark("WithDelta")
		return nil
	}
}

// WithMaxValue sets the per-value bound R (WindowSum; required).
func WithMaxValue(r uint64) Option {
	return func(c *config) error {
		c.maxValue = r
		c.mark("WithMaxValue")
		return nil
	}
}

// WithUniverseBits sets the item universe to [0, 2^bits), 1 <= bits <= 63
// (CountMinRange; required).
func WithUniverseBits(bits int) Option {
	return func(c *config) error {
		if bits < 1 || bits > 63 {
			return fmt.Errorf("%w: universe bits %d (want in [1, 63])", ErrBadParam, bits)
		}
		c.bits = bits
		c.mark("WithUniverseBits")
		return nil
	}
}

// WithSeed selects the hash functions (CountMin, CountMinRange,
// CountSketch; default 1). Two sketches with equal parameters and seed
// are mergeable cell-wise.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		c.mark("WithSeed")
		return nil
	}
}

// WithVariant selects the sliding-window algorithm (SlidingFreq;
// default VariantWorkEfficient, the paper's headline algorithm).
func WithVariant(v SlidingVariant) Option {
	return func(c *config) error {
		if v != VariantBasic && v != VariantSpaceEfficient && v != VariantWorkEfficient {
			return fmt.Errorf("%w: variant %v", ErrBadParam, v)
		}
		c.variant = v
		c.mark("WithVariant")
		return nil
	}
}

// WithShards hash-partitions the aggregate's keyspace across s
// independent shard instances (1 <= s <= 4096), ingested concurrently
// and queried through the Sharded wrapper. Applies to the mergeable,
// infinite-window kinds only: KindFreq, KindCountMin, KindCountSketch,
// KindCountMinRange. New (and Pipeline.Add) then return a *Sharded.
func WithShards(s int) Option {
	return func(c *config) error {
		if s < 1 || s > maxShards {
			return fmt.Errorf("%w: shard count %d (want in [1, %d])", ErrBadParam, s, maxShards)
		}
		c.shards = s
		c.mark("WithShards")
		return nil
	}
}

// WithBatchSize sets the Ingestor's flush threshold: queued items are
// flushed into the sink as one minibatch once at least n >= 1 are
// buffered (default 8192). Larger batches amortize per-batch parallel
// overhead (the paper's work-efficiency argument); smaller ones bound
// staleness. Ingestor only.
func WithBatchSize(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: batch size %d (want >= 1)", ErrBadParam, n)
		}
		c.batchSize = n
		c.mark("WithBatchSize")
		return nil
	}
}

// WithMaxLatency bounds how long a queued item may wait before the
// Ingestor flushes a partial minibatch (default 5ms). Zero flushes as
// fast as the worker can turn around. Ingestor only.
func WithMaxLatency(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("%w: max latency %v (want >= 0)", ErrBadParam, d)
		}
		c.maxLatency = d
		c.mark("WithMaxLatency")
		return nil
	}
}

// WithQueueCap bounds the Ingestor's accepted-but-unapplied items —
// the resting queue plus any batch in flight at the sink (default 4x
// the batch size; must be at least the batch size, and should exceed it
// so producers can keep filling while the sink processes). A full queue
// engages the backpressure policy. Ingestor only.
func WithQueueCap(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: queue capacity %d (want >= 1)", ErrBadParam, n)
		}
		c.queueCap = n
		c.mark("WithQueueCap")
		return nil
	}
}

// WithDataDir makes the Ingestor durable: every flushed minibatch is
// appended to a write-ahead log in dir before it is applied, background
// snapshots bound the log, and NewIngestor recovers the sink's state
// (newest valid snapshot + WAL tail replay) from dir on startup. The
// sink must support checkpointing (encoding.BinaryMarshaler and
// BinaryUnmarshaler — every Aggregate and *Pipeline does). Ingestor
// only.
func WithDataDir(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("%w: empty data directory", ErrBadParam)
		}
		c.dataDir = dir
		c.mark("WithDataDir")
		return nil
	}
}

// WithFsync selects when WAL appends reach stable storage (default
// persist.FsyncAlways: an applied minibatch is durable before its
// effects are queryable). Requires WithDataDir. Ingestor only.
func WithFsync(p persist.Fsync) Option {
	return func(c *config) error {
		if p != persist.FsyncAlways && p != persist.FsyncInterval && p != persist.FsyncNever {
			return fmt.Errorf("%w: fsync policy %d", ErrBadParam, int(p))
		}
		c.fsync = p
		c.mark("WithFsync")
		return nil
	}
}

// WithSnapshotEvery triggers a background snapshot once n >= 1
// minibatches have been logged since the last one (default 4096; a byte
// threshold applies as well), after which the WAL behind the snapshot is
// reclaimed. Smaller values bound recovery time and disk use, larger
// ones reduce snapshot overhead. Requires WithDataDir. Ingestor only.
func WithSnapshotEvery(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: snapshot interval %d batches (want >= 1)", ErrBadParam, n)
		}
		c.snapshotEvery = n
		c.mark("WithSnapshotEvery")
		return nil
	}
}

// WithMetricsRegistry publishes the Ingestor's observability
// instruments (enqueue/flush counters, batch-size and latency
// histograms, queue-depth gauge — plus the persist subsystem's WAL and
// snapshot instruments when WithDataDir is set) to reg instead of a
// private registry, so one registry can expose every layer at a single
// /metrics endpoint. Instruments are identified by name: use at most
// one Ingestor per registry. Ingestor only.
func WithMetricsRegistry(reg *metrics.Registry) Option {
	return func(c *config) error {
		if reg == nil {
			return fmt.Errorf("%w: nil metrics registry", ErrBadParam)
		}
		c.metricsReg = reg
		c.mark("WithMetricsRegistry")
		return nil
	}
}

// WithTracer wires distributed tracing into the Ingestor: a sampled
// batch's lifecycle is recorded as spans — flush, WAL append, sink
// apply — parented onto the trace context the producer handed to
// PutBatchSpan, so one trace follows an item across the async queue
// boundary. A nil-free tracer with sampling rate 0 (or omitting the
// option) keeps the ingest path allocation-free. Ingestor only.
func WithTracer(tr *trace.Tracer) Option {
	return func(c *config) error {
		if tr == nil {
			return fmt.Errorf("%w: nil tracer", ErrBadParam)
		}
		c.tracer = tr
		c.mark("WithTracer")
		return nil
	}
}

// withClock injects the Ingestor's time source, so tests can drive the
// latency-deadline path deterministically instead of racing the real
// clock. Unexported: production code always uses time.Now.
func withClock(now func() time.Time) Option {
	return func(c *config) error {
		if now == nil {
			return fmt.Errorf("%w: nil clock", ErrBadParam)
		}
		c.clock = now
		c.mark("withClock")
		return nil
	}
}

// WithBackpressure selects what the Ingestor does when its queue is full
// (default BackpressureBlock). Ingestor only.
func WithBackpressure(p Backpressure) Option {
	return func(c *config) error {
		if p != BackpressureBlock && p != BackpressureReject && p != BackpressureDrop {
			return fmt.Errorf("%w: backpressure policy %d", ErrBadParam, int(p))
		}
		c.backpressure = p
		c.mark("WithBackpressure")
		return nil
	}
}

// kindUsage drives the centralized applicability/requirement checks.
var kindUsage = map[Kind]struct {
	allowed  map[string]bool
	required []string
}{
	KindBasicCounter: {
		allowed:  map[string]bool{"WithWindow": true, "WithEpsilon": true},
		required: []string{"WithWindow"},
	},
	KindWindowSum: {
		allowed:  map[string]bool{"WithWindow": true, "WithEpsilon": true, "WithMaxValue": true},
		required: []string{"WithWindow", "WithMaxValue"},
	},
	KindFreq: {
		allowed: map[string]bool{"WithEpsilon": true, "WithShards": true},
	},
	KindSlidingFreq: {
		allowed:  map[string]bool{"WithWindow": true, "WithEpsilon": true, "WithVariant": true},
		required: []string{"WithWindow"},
	},
	KindCountMin: {
		allowed: map[string]bool{"WithEpsilon": true, "WithDelta": true, "WithSeed": true, "WithShards": true},
	},
	KindCountMinRange: {
		allowed:  map[string]bool{"WithEpsilon": true, "WithDelta": true, "WithSeed": true, "WithUniverseBits": true, "WithShards": true},
		required: []string{"WithUniverseBits"},
	},
	KindCountSketch: {
		allowed: map[string]bool{"WithEpsilon": true, "WithDelta": true, "WithSeed": true, "WithShards": true},
	},
}

// New constructs an aggregate of the given kind from functional options:
//
//	New(KindSlidingFreq, WithWindow(1<<20), WithEpsilon(0.01), WithVariant(VariantWorkEfficient))
//
// Unset options take documented defaults (epsilon 0.01, delta 0.01,
// seed 1, variant VariantWorkEfficient). Every invalid, inapplicable, or
// missing-required option yields an error wrapping ErrBadParam.
func New(kind Kind, opts ...Option) (Aggregate, error) {
	usage, ok := kindUsage[kind]
	if !ok {
		return nil, fmt.Errorf("%w: unknown aggregate kind %q", ErrBadParam, kind)
	}
	c := config{epsilon: 0.01, delta: 0.01, seed: 1, variant: VariantWorkEfficient}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	for name := range c.set {
		if !usage.allowed[name] {
			return nil, fmt.Errorf("%w: option %s does not apply to %s", ErrBadParam, name, kind)
		}
	}
	for _, name := range usage.required {
		if !c.set[name] {
			return nil, fmt.Errorf("%w: %s requires %s", ErrBadParam, kind, name)
		}
	}
	mk := func() Aggregate {
		switch kind {
		case KindBasicCounter:
			return &BasicCounter{impl: bcount.New(c.window, c.epsilon)}
		case KindWindowSum:
			return &WindowSum{impl: wsum.New(c.window, c.maxValue, c.epsilon)}
		case KindFreq:
			return &FreqEstimator{impl: mg.New(c.epsilon)}
		case KindSlidingFreq:
			return &SlidingFreqEstimator{impl: swfreq.New(c.window, c.epsilon, c.variant)}
		case KindCountMin:
			return &CountMin{impl: cms.New(c.epsilon, c.delta, c.seed)}
		case KindCountMinRange:
			return &CountMinRange{impl: cms.NewRange(c.bits, c.epsilon, c.delta, c.seed)}
		case KindCountSketch:
			return &CountSketch{impl: countsketch.New(c.epsilon, c.delta, c.seed)}
		}
		panic("unreachable")
	}
	if c.set["WithShards"] {
		// Every shard is built from the identical validated config — same
		// hash seed — which keeps the shard set mergeable.
		return newSharded(kind, c.shards, mk), nil
	}
	return mk(), nil
}
