package streamagg

import (
	"fmt"

	"repro/internal/cms"
)

// CountMin is the parallel count-min sketch (Theorem 6.1): point queries
// satisfy f_e <= Query(e) <= f_e + εm with probability at least 1-δ, in
// O(ε⁻¹ log(1/δ)) space. Minibatch ingestion costs
// O(log(1/δ)·max(µ, 1/ε)) work with polylog depth.
type CountMin struct {
	gate
	impl *cms.Sketch
}

// NewCountMin creates a sketch with error epsilon in (0, 1] and failure
// probability delta in (0, 1). The seed selects the hash functions; two
// sketches with equal parameters and seed are mergeable cell-wise.
func NewCountMin(epsilon, delta float64, seed int64) (*CountMin, error) {
	a, err := New(KindCountMin, WithEpsilon(epsilon), WithDelta(delta), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return a.(*CountMin), nil
}

// Kind returns KindCountMin.
func (c *CountMin) Kind() Kind { return KindCountMin }

// ProcessBatch ingests a minibatch of items with the parallel algorithm.
// It never fails; the error is always nil (Aggregate interface).
func (c *CountMin) ProcessBatch(items []uint64) error {
	c.ingest(len(items), func() { c.impl.ProcessBatch(items) })
	return nil
}

// Update adds count occurrences of item (sequential path; count may be
// any non-negative weight). It does not advance StreamLen.
func (c *CountMin) Update(item uint64, count int64) {
	c.ingest(0, func() { c.impl.Update(item, count) })
}

// Query returns the point estimate for item.
func (c *CountMin) Query(item uint64) (est int64) {
	c.read(func() { est = c.impl.Query(item) })
	return est
}

// Estimate is Query under the name the PointEstimator interface (and the
// Pipeline query surface) uses.
func (c *CountMin) Estimate(item uint64) int64 { return c.Query(item) }

// TotalCount returns m, the total ingested weight.
func (c *CountMin) TotalCount() (m int64) {
	c.read(func() { m = c.impl.TotalCount() })
	return m
}

// Dims returns the sketch dimensions (d rows × w columns).
func (c *CountMin) Dims() (d, w int) {
	c.read(func() { d, w = c.impl.Depth(), c.impl.Width() })
	return d, w
}

// SpaceWords reports the memory footprint in 64-bit words.
func (c *CountMin) SpaceWords() (w int) {
	c.read(func() { w = c.impl.SpaceWords() })
	return w
}

// Merge folds another CountMin with equal dimensions and seed into c
// cell-wise (Merger interface): afterwards c summarizes both streams
// with the εm guarantee at the combined m. The other sketch is read
// under its query gate and left unchanged.
func (c *CountMin) Merge(other Aggregate) error {
	o, ok := other.(*CountMin)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into %s", ErrIncompatibleMerge, other.Kind(), c.Kind())
	}
	if o == c {
		return fmt.Errorf("%w: aggregate merged with itself", ErrIncompatibleMerge)
	}
	// Snapshot the other sketch under its own read lock first, then merge
	// under c's write lock: never holding two gates at once rules out
	// lock-order deadlocks between concurrent merges.
	var clone *cms.Sketch
	var olen int64
	o.read(func() { clone, olen = o.impl.Clone(), o.streamLen })
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.impl.Merge(clone); err != nil {
		return fmt.Errorf("%w: %v", ErrIncompatibleMerge, err)
	}
	c.streamLen += olen
	return nil
}

// CountMinRange is a dyadic stack of count-min sketches supporting range
// counts and approximate quantiles over a bounded integer universe — the
// standard CM-sketch applications the paper cites.
type CountMinRange struct {
	gate
	impl *cms.RangeSketch
}

// NewCountMinRange creates a range sketch over the universe [0, 2^bits)
// (1 <= bits <= 63) with per-level error epsilon and failure probability
// delta.
func NewCountMinRange(bits int, epsilon, delta float64, seed int64) (*CountMinRange, error) {
	a, err := New(KindCountMinRange,
		WithUniverseBits(bits), WithEpsilon(epsilon), WithDelta(delta), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return a.(*CountMinRange), nil
}

// Kind returns KindCountMinRange.
func (c *CountMinRange) Kind() Kind { return KindCountMinRange }

// ProcessBatch ingests a minibatch of items (each < 2^bits). It never
// fails; the error is always nil (Aggregate interface).
func (c *CountMinRange) ProcessBatch(items []uint64) error {
	c.ingest(len(items), func() { c.impl.ProcessBatch(items) })
	return nil
}

// RangeCount estimates the number of items in [lo, hi] (inclusive); it
// never undercounts.
func (c *CountMinRange) RangeCount(lo, hi uint64) (est int64) {
	c.read(func() { est = c.impl.RangeCount(lo, hi) })
	return est
}

// Quantile returns an approximate q-quantile of the ingested values.
func (c *CountMinRange) Quantile(q float64) (v uint64) {
	c.read(func() { v = c.impl.Quantile(q) })
	return v
}

// TotalCount returns the total ingested weight.
func (c *CountMinRange) TotalCount() (m int64) {
	c.read(func() { m = c.impl.TotalCount() })
	return m
}

// SpaceWords reports the memory footprint in 64-bit words.
func (c *CountMinRange) SpaceWords() (w int) {
	c.read(func() { w = c.impl.SpaceWords() })
	return w
}

// Merge folds another CountMinRange with equal universe, dimensions and
// seed into c level-wise (Merger interface).
func (c *CountMinRange) Merge(other Aggregate) error {
	o, ok := other.(*CountMinRange)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into %s", ErrIncompatibleMerge, other.Kind(), c.Kind())
	}
	if o == c {
		return fmt.Errorf("%w: aggregate merged with itself", ErrIncompatibleMerge)
	}
	var clone *cms.RangeSketch
	var olen int64
	o.read(func() { clone, olen = o.impl.Clone(), o.streamLen })
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.impl.Merge(clone); err != nil {
		return fmt.Errorf("%w: %v", ErrIncompatibleMerge, err)
	}
	c.streamLen += olen
	return nil
}
