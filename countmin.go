package streamagg

import (
	"fmt"
	"sync"

	"repro/internal/cms"
)

// CountMin is the parallel count-min sketch (Theorem 6.1): point queries
// satisfy f_e <= Query(e) <= f_e + εm with probability at least 1-δ, in
// O(ε⁻¹ log(1/δ)) space. Minibatch ingestion costs
// O(log(1/δ)·max(µ, 1/ε)) work with polylog depth.
type CountMin struct {
	mu   sync.RWMutex
	impl *cms.Sketch
}

// NewCountMin creates a sketch with error epsilon in (0, 1] and failure
// probability delta in (0, 1). The seed selects the hash functions; two
// sketches with equal parameters and seed are mergeable cell-wise.
func NewCountMin(epsilon, delta float64, seed int64) (*CountMin, error) {
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("%w: delta %v", ErrBadParam, delta)
	}
	return &CountMin{impl: cms.New(epsilon, delta, seed)}, nil
}

// ProcessBatch ingests a minibatch of items with the parallel algorithm.
func (c *CountMin) ProcessBatch(items []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl.ProcessBatch(items)
}

// Update adds count occurrences of item (sequential path; count may be
// any non-negative weight).
func (c *CountMin) Update(item uint64, count int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl.Update(item, count)
}

// Query returns the point estimate for item.
func (c *CountMin) Query(item uint64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.Query(item)
}

// TotalCount returns m, the total ingested weight.
func (c *CountMin) TotalCount() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.TotalCount()
}

// Dims returns the sketch dimensions (d rows × w columns).
func (c *CountMin) Dims() (d, w int) { return c.impl.Depth(), c.impl.Width() }

// SpaceWords reports the memory footprint in 64-bit words.
func (c *CountMin) SpaceWords() int { return c.impl.SpaceWords() }

// CountMinRange is a dyadic stack of count-min sketches supporting range
// counts and approximate quantiles over a bounded integer universe — the
// standard CM-sketch applications the paper cites.
type CountMinRange struct {
	mu   sync.RWMutex
	impl *cms.RangeSketch
}

// NewCountMinRange creates a range sketch over the universe [0, 2^bits)
// (1 <= bits <= 63) with per-level error epsilon and failure probability
// delta.
func NewCountMinRange(bits int, epsilon, delta float64, seed int64) (*CountMinRange, error) {
	if bits < 1 || bits > 63 {
		return nil, fmt.Errorf("%w: bits %d", ErrBadParam, bits)
	}
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("%w: delta %v", ErrBadParam, delta)
	}
	return &CountMinRange{impl: cms.NewRange(bits, epsilon, delta, seed)}, nil
}

// ProcessBatch ingests a minibatch of items (each < 2^bits).
func (c *CountMinRange) ProcessBatch(items []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl.ProcessBatch(items)
}

// RangeCount estimates the number of items in [lo, hi] (inclusive); it
// never undercounts.
func (c *CountMinRange) RangeCount(lo, hi uint64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.RangeCount(lo, hi)
}

// Quantile returns an approximate q-quantile of the ingested values.
func (c *CountMinRange) Quantile(q float64) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.Quantile(q)
}

// TotalCount returns the total ingested weight.
func (c *CountMinRange) TotalCount() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.TotalCount()
}

// SpaceWords reports the memory footprint in 64-bit words.
func (c *CountMinRange) SpaceWords() int { return c.impl.SpaceWords() }
