package streamagg

import (
	"fmt"
	"sync"

	"repro/internal/countsketch"
)

// CountSketch is the Count-Sketch of [CCFC02] (cited by the paper as the
// other standard frequency sketch), ingested with the same parallel
// minibatch scheme as CountMin. Unlike CountMin it is unbiased and
// supports deletions (turnstile updates); point queries satisfy
// |Query(e) - f_e| <= ε·‖f‖₂ with probability at least 1-δ.
type CountSketch struct {
	mu   sync.RWMutex
	impl *countsketch.Sketch
}

// NewCountSketch creates a sketch with error epsilon in (0, 1] (relative
// to the L2 norm of the frequency vector) and failure probability delta
// in (0, 1).
func NewCountSketch(epsilon, delta float64, seed int64) (*CountSketch, error) {
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParam, epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("%w: delta %v", ErrBadParam, delta)
	}
	return &CountSketch{impl: countsketch.New(epsilon, delta, seed)}, nil
}

// ProcessBatch ingests a minibatch of items in parallel.
func (c *CountSketch) ProcessBatch(items []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl.ProcessBatch(items)
}

// Update adds count occurrences of item; count may be negative
// (turnstile deletions).
func (c *CountSketch) Update(item uint64, count int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl.Update(item, count)
}

// Query returns the unbiased median-of-rows estimate for item.
func (c *CountSketch) Query(item uint64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.Query(item)
}

// TotalCount returns the net ingested weight.
func (c *CountSketch) TotalCount() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.impl.TotalCount()
}

// Dims returns the sketch dimensions (d rows × w columns).
func (c *CountSketch) Dims() (d, w int) { return c.impl.Depth(), c.impl.Width() }

// SpaceWords reports the memory footprint in 64-bit words.
func (c *CountSketch) SpaceWords() int { return c.impl.SpaceWords() }
