package streamagg

import (
	"fmt"

	"repro/internal/countsketch"
)

// CountSketch is the Count-Sketch of [CCFC02] (cited by the paper as the
// other standard frequency sketch), ingested with the same parallel
// minibatch scheme as CountMin. Unlike CountMin it is unbiased and
// supports deletions (turnstile updates); point queries satisfy
// |Query(e) - f_e| <= ε·‖f‖₂ with probability at least 1-δ.
type CountSketch struct {
	gate
	impl *countsketch.Sketch
}

// NewCountSketch creates a sketch with error epsilon in (0, 1] (relative
// to the L2 norm of the frequency vector) and failure probability delta
// in (0, 1).
func NewCountSketch(epsilon, delta float64, seed int64) (*CountSketch, error) {
	a, err := New(KindCountSketch, WithEpsilon(epsilon), WithDelta(delta), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return a.(*CountSketch), nil
}

// Kind returns KindCountSketch.
func (c *CountSketch) Kind() Kind { return KindCountSketch }

// ProcessBatch ingests a minibatch of items in parallel. It never fails;
// the error is always nil (Aggregate interface).
func (c *CountSketch) ProcessBatch(items []uint64) error {
	c.ingest(len(items), func() { c.impl.ProcessBatch(items) })
	return nil
}

// Update adds count occurrences of item; count may be negative
// (turnstile deletions). It does not advance StreamLen.
func (c *CountSketch) Update(item uint64, count int64) {
	c.ingest(0, func() { c.impl.Update(item, count) })
}

// Query returns the unbiased median-of-rows estimate for item.
func (c *CountSketch) Query(item uint64) (est int64) {
	c.read(func() { est = c.impl.Query(item) })
	return est
}

// Estimate is Query under the name the PointEstimator interface (and the
// Pipeline query surface) uses.
func (c *CountSketch) Estimate(item uint64) int64 { return c.Query(item) }

// TotalCount returns the net ingested weight.
func (c *CountSketch) TotalCount() (m int64) {
	c.read(func() { m = c.impl.TotalCount() })
	return m
}

// Dims returns the sketch dimensions (d rows × w columns).
func (c *CountSketch) Dims() (d, w int) {
	c.read(func() { d, w = c.impl.Depth(), c.impl.Width() })
	return d, w
}

// SpaceWords reports the memory footprint in 64-bit words.
func (c *CountSketch) SpaceWords() (w int) {
	c.read(func() { w = c.impl.SpaceWords() })
	return w
}

// Merge folds another CountSketch with equal dimensions and seed into c
// cell-wise (Merger interface): count-sketch is a linear sketch, so the
// merged state is exactly the sketch of the concatenated streams, with
// error bounded by ε(‖f_a‖₂+‖f_b‖₂).
func (c *CountSketch) Merge(other Aggregate) error {
	o, ok := other.(*CountSketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into %s", ErrIncompatibleMerge, other.Kind(), c.Kind())
	}
	if o == c {
		return fmt.Errorf("%w: aggregate merged with itself", ErrIncompatibleMerge)
	}
	var clone *countsketch.Sketch
	var olen int64
	o.read(func() { clone, olen = o.impl.Clone(), o.streamLen })
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.impl.Merge(clone); err != nil {
		return fmt.Errorf("%w: %v", ErrIncompatibleMerge, err)
	}
	c.streamLen += olen
	return nil
}
