// Package metrics is a zero-dependency instrumentation registry for the
// streamagg serving stack: counters, gauges, and log₂-bucketed
// histograms that render in the Prometheus text exposition format
// (version 0.0.4), scrapable at GET /metrics.
//
// The design constraints come from the ingest hot path. The paper's
// serving story amortizes all per-batch overhead across minibatch items,
// so instrumentation must not reintroduce per-item synchronization:
// Counter, Gauge, and Histogram updates are single atomic adds with no
// locks (the registry's mutex is touched only at construction and
// render time). Histograms bucket by powers of two (internal/hist.Log2)
// rather than arbitrary boundaries — batch sizes and nanosecond
// latencies span many orders of magnitude, and the log₂ shape matches
// the units the paper states its per-minibatch work bounds in.
//
// Instruments are created through a Registry and identified by a family
// name plus an optional fixed label set:
//
//	reg := metrics.NewRegistry()
//	flushes := reg.Counter("ingest_flushes_total", "Flushed minibatches.", "cause", "size")
//	lat := reg.Histogram("apply_seconds", "Sink apply latency.", metrics.UnitSeconds)
//	flushes.Inc()
//	lat.ObserveDuration(time.Since(start))
//	http.Handle("/metrics", reg.Handler())
//
// Requesting the same (name, labels) pair again returns the same
// instrument, so a subsystem can be wired once and read from anywhere;
// requesting a name with a conflicting instrument type panics (a wiring
// bug, not a runtime condition).
package metrics

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// Unit selects how a Histogram's raw uint64 observations are rendered.
type Unit int

const (
	// UnitItems renders bucket bounds as plain counts (batch sizes,
	// bytes): observations are dimensionless integers.
	UnitItems Unit = iota
	// UnitSeconds renders bucket bounds and sums as seconds:
	// observations are nanoseconds (use ObserveDuration).
	UnitSeconds
)

// Counter is a monotonically increasing value. All methods are
// lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the rendered series to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a log₂-bucketed distribution of uint64 observations.
// Observe is two atomic adds; no locks. A histogram can additionally
// carry one exemplar — the trace ID of its largest exemplar-annotated
// observation — linking the distribution's tail back to a recorded
// trace; the exemplar mutex is touched only by the Exemplar methods,
// which callers invoke on the (rare) sampled path.
type Histogram struct {
	unit Unit
	h    hist.Log2

	exMu    sync.Mutex
	exTrace string
	exValue uint64
}

// Observe records one value in the histogram's raw unit (items, bytes,
// or nanoseconds depending on the Unit it was created with).
func (h *Histogram) Observe(v uint64) { h.h.Observe(v) }

// ObserveDuration records a duration (for UnitSeconds histograms);
// negative durations clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.h.Observe(uint64(d.Nanoseconds()))
}

// Snapshot returns the per-bucket counts (trimmed after the last
// non-empty bucket; bucket i counts values of bit length i), the total
// observation count, and the sum in raw units.
func (h *Histogram) Snapshot() (buckets []int64, count, sum int64) { return h.h.Snapshot() }

// ObserveExemplar records v and, when traceID is non-empty and v is at
// least as large as the current exemplar, remembers (traceID, v) as the
// family's slowest-trace exemplar. Pass an empty traceID to observe
// without touching the exemplar lock.
func (h *Histogram) ObserveExemplar(v uint64, traceID string) {
	h.h.Observe(v)
	if traceID == "" {
		return
	}
	h.exMu.Lock()
	if v >= h.exValue || h.exTrace == "" {
		h.exValue, h.exTrace = v, traceID
	}
	h.exMu.Unlock()
}

// ObserveDurationExemplar is ObserveExemplar for durations (UnitSeconds
// histograms); negative durations clamp to zero.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	if d < 0 {
		d = 0
	}
	h.ObserveExemplar(uint64(d.Nanoseconds()), traceID)
}

// Exemplar returns the trace ID and raw-unit value of the largest
// exemplar-annotated observation, or ("", 0) if none was recorded.
func (h *Histogram) Exemplar() (traceID string, value uint64) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exTrace, h.exValue
}

// instrument is anything a family can hold and render.
type instrument interface {
	write(w *bytes.Buffer, name, labels string)
}

// family is one metric name: its metadata plus every labeled instrument
// registered under it.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", or "histogram"
	unit Unit

	order   []string // label-set render order = registration order
	members map[string]instrument
}

// Registry holds metric families and renders them. The zero value is
// not usable; construct with NewRegistry. Registration takes the
// registry lock; instrument updates never do.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders k/v pairs as a Prometheus label block
// (`{k="v",...}`), empty for no labels. Pairs are sorted by key so the
// same set always maps to the same instrument.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q (want key, value pairs)", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the (name, labels) instrument, creating it with mk on
// first use. It panics if name is already registered as another type —
// that is a wiring bug, caught at startup.
func (r *Registry) get(name, help, typ string, unit Unit, labels []string, mk func() instrument) instrument {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, unit: unit, members: make(map[string]instrument)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.members[ls]
	if !ok {
		m = mk()
		f.members[ls] = m
		f.order = append(f.order, ls)
	}
	return m
}

// Counter returns the counter registered under name with the given
// label pairs ("key", "value", ...), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.get(name, help, "counter", UnitItems, labels, func() instrument { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name with the given label
// pairs, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.get(name, help, "gauge", UnitItems, labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time — for values derived from existing state (queue depth, WAL
// position) rather than maintained as a separate counter. fn must be
// safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.get(name, help, "gauge", UnitItems, labels, func() instrument { return gaugeFunc(fn) })
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for monotone counts already maintained elsewhere (cache
// hit/miss atomics). fn must be monotone and safe to call from any
// goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	r.get(name, help, "counter", UnitItems, labels, func() instrument { return counterFunc(fn) })
}

// Histogram returns the log₂ histogram registered under name with the
// given label pairs, creating it on first use.
func (r *Registry) Histogram(name, help string, unit Unit, labels ...string) *Histogram {
	return r.get(name, help, "histogram", unit, labels, func() instrument { return &Histogram{unit: unit} }).(*Histogram)
}

type gaugeFunc func() float64

type counterFunc func() int64

func (c *Counter) write(w *bytes.Buffer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

func (g *Gauge) write(w *bytes.Buffer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
}

func (f gaugeFunc) write(w *bytes.Buffer, name, labels string) {
	fmt.Fprintf(w, "%s%s %g\n", name, labels, f())
}

func (f counterFunc) write(w *bytes.Buffer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, f())
}

// write renders the histogram as the standard Prometheus triplet:
// cumulative _bucket series (le bounds are 2^i−1, the largest value
// bucket i holds — exact, not approximate, for integer observations),
// _sum, and _count. Empty buckets inside the occupied range are
// rendered; the tail beyond the largest observation collapses into
// +Inf.
func (h *Histogram) write(w *bytes.Buffer, name, labels string) {
	buckets, count, sum := h.h.Snapshot()
	// Splice `le` into the (possibly empty) label block.
	leLabel := func(bound string) string {
		if labels == "" {
			return `{le="` + bound + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + bound + `"}`
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		bound := hist.Log2UpperBound(i)
		var bs string
		if h.unit == UnitSeconds {
			bs = fmt.Sprintf("%g", float64(bound)/1e9)
		} else {
			bs = fmt.Sprintf("%d", bound)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabel(bs), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabel("+Inf"), count)
	if h.unit == UnitSeconds {
		fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(sum)/1e9)
	} else {
		fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, sum)
	}
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// WriteText renders every family in registration order in the
// Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot the family tables (name order, label order, instrument
	// pointers) under the lock: registration may run concurrently with
	// a scrape. The instruments themselves render after the unlock, so
	// GaugeFunc/CounterFunc callbacks — which may take subsystem locks
	// — never run while the registry lock is held.
	type famSnap struct {
		name, help, typ string
		labels          []string
		members         []instrument
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := famSnap{
			name:    f.name,
			help:    f.help,
			typ:     f.typ,
			labels:  append([]string(nil), f.order...),
			members: make([]instrument, len(f.order)),
		}
		for i, ls := range f.order {
			fs.members[i] = f.members[ls]
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	var b bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for i, ls := range f.labels {
			f.members[i].write(&b, f.name, ls)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Handler returns an http.Handler serving the registry in the text
// exposition format, for mounting at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
