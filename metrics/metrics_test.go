package metrics

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.", "code", "2xx")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if again := r.Counter("requests_total", "Total requests.", "code", "2xx"); again != c {
		t.Fatal("re-registering the same counter returned a new instrument")
	}
	// Same family, different labels: a distinct series.
	c4 := r.Counter("requests_total", "Total requests.", "code", "4xx")
	if c4 == c {
		t.Fatal("different label set returned the same instrument")
	}
	g := r.Gauge("queue_depth", "Depth.")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %d, want 4", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch_items", "Batch sizes.", UnitItems)
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	buckets, count, sum := h.Snapshot()
	if count != 6 || sum != 1010 {
		t.Fatalf("count=%d sum=%d, want 6, 1010", count, sum)
	}
	// bit lengths: 0→0, 1→1, 2,3→2, 4→3, 1000→10
	want := []int64{1, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	if len(buckets) != len(want) {
		t.Fatalf("buckets=%v, want %v", buckets, want)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], want[i], buckets)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("flushes_total", "Flushed batches.", "cause", "size").Add(3)
	r.Counter("flushes_total", "Flushed batches.", "cause", "timer").Add(2)
	r.GaugeFunc("up", "Liveness.", func() float64 { return 1 })
	r.CounterFunc("hits_total", "Cache hits.", func() int64 { return 9 })
	h := r.Histogram("wait_seconds", "Wait time.", UnitSeconds)
	h.ObserveDuration(3 * time.Second)
	h.ObserveDuration(-time.Second) // clamps to 0

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP flushes_total Flushed batches.\n",
		"# TYPE flushes_total counter\n",
		`flushes_total{cause="size"} 3` + "\n",
		`flushes_total{cause="timer"} 2` + "\n",
		"# TYPE up gauge\n",
		"up 1\n",
		"hits_total 9\n",
		"# TYPE wait_seconds histogram\n",
		`wait_seconds_bucket{le="0"} 1` + "\n",
		`wait_seconds_bucket{le="+Inf"} 2` + "\n",
		"wait_seconds_sum 3\n",
		"wait_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1") {
		t.Fatalf("body: %s", rec.Body.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.")
	h := r.Histogram("v_items", "V.", UnitItems)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if _, count, _ := h.Snapshot(); count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", count)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "E.", "path", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `e_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("escaping broken: %s", b.String())
	}
}

// Registration (GetOrCreate is a runtime API) must not race a
// concurrent scrape: WriteText snapshots the family tables under the
// registry lock. Run under -race in CI.
func TestConcurrentRegistrationAndScrape(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			//agglint:ignore metriclabel deliberately growing the registry to race it against scrapes
			r.Counter("grow_total", "G.", "i", fmt.Sprint(i)).Inc()
			//agglint:ignore metriclabel deliberately growing the registry to race it against scrapes
			r.Histogram("grow_items", "G.", UnitItems, "i", fmt.Sprint(i)).Observe(uint64(i))
		}
	}()
	for {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

// The instruments ride the ingest hot path; these benchmarks are the
// ground truth behind aggbench E15's overhead target.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := Histogram{}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(4096)
		}
	})
}
