package metrics

// Prometheus text-exposition conformance: properties a scraper relies
// on, checked against the rendered output rather than the in-memory
// state. Escaping must round-trip (a label value with \n, ", or \ in it
// must parse back to the original), histogram _bucket series must be
// cumulative and monotone in le order, and the +Inf bucket must equal
// _count exactly.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/hist"
)

// unescapeLabel inverts escapeLabel per the exposition format: \\ → \,
// \" → ", \n → newline.
func unescapeLabel(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func TestLabelEscapingRoundTrips(t *testing.T) {
	values := []string{
		"plain",
		"new\nline",
		`quo"ted`,
		`back\slash`,
		`all\three:"x"` + "\n",
		`trailing\`,
		`\n`, // literal backslash-n, must not collapse into a newline
	}
	for i, v := range values {
		r := NewRegistry()
		r.Counter("rt_total", "Round trip.", "v", v).Inc()
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		// Extract the rendered label value: rt_total{v="..."} 1
		start := strings.Index(out, `rt_total{v="`)
		if start < 0 {
			t.Fatalf("case %d: series missing:\n%s", i, out)
		}
		rest := out[start+len(`rt_total{v="`):]
		end := strings.Index(rest, `"} 1`)
		if end < 0 {
			t.Fatalf("case %d: series truncated:\n%s", i, out)
		}
		escaped := rest[:end]
		// The rendered value must contain no raw newline — it would
		// corrupt the line-oriented format. (An unescaped quote would
		// break the extraction above and fail the round trip below.)
		if strings.Contains(escaped, "\n") {
			t.Errorf("case %d: rendered value %q leaks a raw newline", i, escaped)
		}
		if got := unescapeLabel(escaped); got != v {
			t.Errorf("case %d: %q rendered as %q, unescapes to %q", i, v, escaped, got)
		}
	}
}

// parseBuckets extracts (le, cumulative count) pairs plus the _count
// value for one histogram family from rendered exposition text.
func parseBuckets(t *testing.T, out, name string) (les []string, cum []int64, count int64) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+"_bucket{") {
			leStart := strings.Index(line, `le="`) + len(`le="`)
			leEnd := strings.Index(line[leStart:], `"`) + leStart
			les = append(les, line[leStart:leEnd])
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cum = append(cum, v)
		}
		if strings.HasPrefix(line, name+"_count") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	return les, cum, count
}

func TestHistogramBucketsCumulativeAndMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_items", "Latencies.", UnitItems)
	rng := rand.New(rand.NewSource(1))
	var n int64
	for i := 0; i < 10000; i++ {
		h.Observe(uint64(rng.Int63n(1 << uint(rng.Intn(30)))))
		n++
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	les, cum, count := parseBuckets(t, b.String(), "lat_items")
	if len(les) == 0 {
		t.Fatal("no bucket series rendered")
	}
	if les[len(les)-1] != "+Inf" {
		t.Fatalf("last bucket le=%q, want +Inf", les[len(les)-1])
	}
	// Cumulative counts never decrease, and finite le bounds strictly
	// increase.
	var prevBound float64 = -1
	for i := range les {
		if i > 0 && cum[i] < cum[i-1] {
			t.Fatalf("bucket %d (le=%s) count %d < previous %d — not cumulative",
				i, les[i], cum[i], cum[i-1])
		}
		if les[i] == "+Inf" {
			continue
		}
		bound, err := strconv.ParseFloat(les[i], 64)
		if err != nil {
			t.Fatalf("unparseable le %q", les[i])
		}
		if bound <= prevBound {
			t.Fatalf("le bounds not increasing: %v after %v", bound, prevBound)
		}
		prevBound = bound
	}
	// The +Inf bucket is exactly the total observation count.
	if inf := cum[len(cum)-1]; inf != count || count != n {
		t.Fatalf("+Inf bucket %d, _count %d, observations %d — must all match", inf, count, n)
	}
}

// TestHistogramBucketBoundsMatchLog2 pins the exposition contract the
// README documents: bucket i's le bound is hist.Log2UpperBound(i) =
// 2^i−1 — the largest value the bucket holds, an exact inclusive bound
// for integer observations, not an approximation — rendered verbatim
// for UnitItems and divided by 1e9 (%g) for UnitSeconds. Anyone
// recutting the histogram (different base, different rendering) must
// consciously update both this test and the docs.
func TestHistogramBucketBoundsMatchLog2(t *testing.T) {
	r := NewRegistry()
	items := r.Histogram("bounds_items", "Bucket bound contract.", UnitItems)
	// Populate a specific high bucket so every le from 0 up renders,
	// empty interior buckets included.
	items.Observe(1 << 20)
	secs := r.Histogram("bounds_seconds", "Bucket bound contract.", UnitSeconds)
	secs.ObserveDuration(3 * time.Second)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	les, _, _ := parseBuckets(t, out, "bounds_items")
	if len(les) != 22+1 { // buckets 0..21 (1<<20 has bit length 21) plus +Inf
		t.Fatalf("rendered %d bucket series, want 23: %v", len(les), les)
	}
	for i, le := range les[:len(les)-1] {
		want := strconv.FormatUint(hist.Log2UpperBound(i), 10)
		if le != want {
			t.Errorf("items bucket %d: le=%q, want %q (= 2^%d-1)", i, le, want, i)
		}
	}

	les, _, _ = parseBuckets(t, out, "bounds_seconds")
	if n := len(les); n < 2 || les[n-1] != "+Inf" {
		t.Fatalf("seconds buckets = %v", les)
	}
	for i, le := range les[:len(les)-1] {
		want := fmt.Sprintf("%g", float64(hist.Log2UpperBound(i))/1e9)
		if le != want {
			t.Errorf("seconds bucket %d: le=%q, want %q (= (2^%d-1)/1e9)", i, le, want, i)
		}
	}
}

// The bounds are inclusive exactly the way the Log2 histogram buckets
// by bit length: 2^k−1 is the last value of bucket k, 2^k the first of
// bucket k+1. Verified through the rendered text, not the internals.
func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	const k = 10
	r := NewRegistry()
	h := r.Histogram("edge_items", "Boundary semantics.", UnitItems)
	h.Observe(1<<k - 1) // last value of bucket k
	h.Observe(1 << k)   // first value of bucket k+1
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	les, cum, _ := parseBuckets(t, b.String(), "edge_items")
	leOf := strconv.FormatUint(hist.Log2UpperBound(k), 10)
	for i, le := range les {
		var prev int64
		if i > 0 {
			prev = cum[i-1]
		}
		inBucket := cum[i] - prev
		switch le {
		case leOf:
			if inBucket != 1 {
				t.Errorf("le=%s holds %d observations, want exactly 1 (2^%d-1)", le, inBucket, k)
			}
		case strconv.FormatUint(hist.Log2UpperBound(k+1), 10):
			if inBucket != 1 {
				t.Errorf("le=%s holds %d observations, want exactly 1 (2^%d)", le, inBucket, k)
			}
		default:
			if inBucket != 0 {
				t.Errorf("le=%s holds %d observations, want 0", le, inBucket)
			}
		}
	}
}

func TestSecondsHistogramInfEqualsCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", UnitSeconds, "handler", "ingest")
	for i := 0; i < 257; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	_, cum, count := parseBuckets(t, b.String(), "lat_seconds")
	if len(cum) == 0 || cum[len(cum)-1] != 257 || count != 257 {
		t.Fatalf("+Inf=%v _count=%d, want both 257", cum, count)
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	if tid, _ := h.Exemplar(); tid != "" {
		t.Fatal("fresh histogram has an exemplar")
	}
	// Empty trace IDs observe without claiming the exemplar.
	h.ObserveExemplar(100, "")
	if tid, _ := h.Exemplar(); tid != "" {
		t.Fatal("empty trace ID claimed the exemplar")
	}
	h.ObserveExemplar(50, "trace-slow")
	h.ObserveExemplar(10, "trace-fast") // smaller: must not displace
	if tid, v := h.Exemplar(); tid != "trace-slow" || v != 50 {
		t.Fatalf("exemplar = (%q, %d), want (trace-slow, 50)", tid, v)
	}
	h.ObserveExemplar(500, "trace-slower") // larger: takes over
	if tid, v := h.Exemplar(); tid != "trace-slower" || v != 500 {
		t.Fatalf("exemplar = (%q, %d), want (trace-slower, 500)", tid, v)
	}
	h.ObserveDurationExemplar(2*time.Second, "trace-slowest")
	if tid, v := h.Exemplar(); tid != "trace-slowest" || v != uint64(2*time.Second) {
		t.Fatalf("exemplar = (%q, %d), want (trace-slowest, 2s)", tid, v)
	}
	// The exemplar path still feeds the distribution.
	if _, count, _ := h.Snapshot(); count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

// Exemplar updates are concurrency-safe and settle on the maximum.
func TestHistogramExemplarConcurrent(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.ObserveExemplar(uint64(g*1000+i), fmt.Sprintf("t%d", g))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if tid, v := h.Exemplar(); tid != "t3" || v != 3999 {
		t.Fatalf("exemplar = (%q, %d), want (t3, 3999)", tid, v)
	}
}
