package streamagg

// Sharded keyspace partitioning — the scaling axis orthogonal to the
// paper's intra-minibatch parallelism. A Sharded aggregate hash-splits
// every minibatch across S independent instances of one mergeable kind
// (disjoint keyspaces, no shared cells), ingests the shards concurrently
// on the shared worker budget, and answers queries either by routing /
// summing per shard or through an on-demand merged snapshot built with
// the Merger interface — the classic mergeable-summaries route [ACH+13].
//
// Only the infinite-window, keyspace-partitionable kinds can be sharded:
// KindFreq, KindCountMin, KindCountSketch, and KindCountMinRange. The
// sliding-window aggregates (BasicCounter, WindowSum, SlidingFreq) are
// excluded on principle, not implementation laziness: their count-based
// window is a property of the whole stream order, so a shard that sees
// only a hashed subsequence cannot reconstruct "the last n elements".
//
// Error bounds. Point queries route to the item's owner shard, whose
// sub-stream length m_i <= m, so every per-kind guarantee stated against
// εm holds verbatim. Merged snapshots inherit the mergeable-summaries
// bounds documented on Merger.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// KindSharded tags Sharded wrappers (and their checkpoint envelopes).
const KindSharded Kind = "sharded"

// maxShards bounds the shard count; beyond this the per-shard batches
// are too small to amortize anything.
const maxShards = 4096

// shardable lists the kinds whose keyspace can be hash-partitioned
// across independent shards; all of them implement Merger.
var shardable = map[Kind]bool{
	KindFreq:          true,
	KindCountMin:      true,
	KindCountSketch:   true,
	KindCountMinRange: true,
}

// Sharded hash-partitions one logical aggregate across S independent
// shard instances of a mergeable kind. It satisfies Aggregate plus every
// query interface its shard kind supports; querying a capability the
// shard kind lacks returns zero values (the Pipeline's keyed surface
// cannot distinguish capabilities through the wrapper). The zero value
// is ready for UnmarshalBinary only.
type Sharded struct {
	gate
	inner  Kind
	shards []Aggregate

	// Cached merged view of all shards, for the queries that need a
	// global summary (HeavyHitters, Quantile, Snapshot). Built lazily on
	// first use and reused until the next ingest or restore invalidates
	// it, so back-to-back global queries under read-heavy serving
	// traffic pay the S-way merge once instead of per call. snapMu
	// guards snap and is only acquired while gate.mu is held (read or
	// write), so invalidation (under the write lock) never races a
	// rebuild (under a read lock).
	snapMu sync.Mutex
	snap   Aggregate // nil when stale

	// Merge-cache effectiveness counters, exposed by the serving
	// layer's /metrics endpoint (MergeCacheStats). Atomics: bumped
	// under snapMu but read lock-free.
	snapHits   atomic.Int64
	snapMisses atomic.Int64

	// Per-instance partition scratch, reused across ProcessBatch calls
	// (which hold the gate's write lock), so steady-state ingest splits
	// the minibatch without allocating.
	part partScratch
}

// NewSharded creates a sharded aggregate: shards independent instances
// of kind (1 <= shards <= 4096), all built from the same options — and
// therefore the same hash seed, which keeps them mergeable.
func NewSharded(kind Kind, shards int, opts ...Option) (*Sharded, error) {
	a, err := New(kind, append(append([]Option{}, opts...), WithShards(shards))...)
	if err != nil {
		return nil, err
	}
	return a.(*Sharded), nil
}

// newSharded wraps s instances produced by mk. The caller (New) has
// already validated kind and s.
func newSharded(kind Kind, s int, mk func() Aggregate) *Sharded {
	shards := make([]Aggregate, s)
	for i := range shards {
		shards[i] = mk()
	}
	return &Sharded{inner: kind, shards: shards}
}

// Kind returns KindSharded. InnerKind reports what the shards are.
func (s *Sharded) Kind() Kind { return KindSharded }

// InnerKind returns the kind of the shard instances.
func (s *Sharded) InnerKind() (k Kind) {
	s.read(func() { k = s.inner })
	return k
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() (n int) {
	s.read(func() { n = len(s.shards) })
	return n
}

// shardIndex maps an item to its owner shard with a splitmix64-style
// finalizer — fixed (not seeded) so the partition survives
// checkpoint/restore and is independent of the shards' sketch hashes.
func shardIndex(item uint64, shards int) int {
	x := item
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// partScratch holds the reusable buffers of the counting-sort partition:
// per-item shard ids, the flattened chunks×shards count/offset matrices,
// the slice headers handed to the shards, and one backing array that all
// sub-batches are carved from. Owned by one Sharded instance and used
// under its write gate.
type partScratch struct {
	ids     []uint16
	counts  []int // chunks*shards, row-major by chunk
	offsets []int // chunks*shards, row-major by chunk
	totals  []int
	out     [][]uint64
	buf     []uint64 // backing storage for every shard's sub-batch
}

//agglint:hotpath
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// partition splits items into per-shard sub-batches, preserving stream
// order within each shard (a stable counting-sort scatter: per-chunk
// counts, prefix offsets, parallel scatter). The returned slices alias
// the scratch and are valid until the next call.
//
//agglint:hotpath
func (ps *partScratch) partition(items []uint64, shards int) [][]uint64 {
	n := len(items)
	if shards == 1 {
		if cap(ps.out) < 1 {
			ps.out = make([][]uint64, 1)
		}
		out := ps.out[:1]
		out[0] = items
		return out
	}
	chunks := parallel.Workers()
	if max := (n + 4095) / 4096; chunks > max {
		chunks = max
	}
	if chunks < 1 {
		chunks = 1
	}
	if cap(ps.ids) < n {
		ps.ids = make([]uint16, n)
	}
	ids := ps.ids[:n]
	counts := growInts(&ps.counts, chunks*shards)
	bounds := func(c int) (lo, hi int) { return c * n / chunks, (c + 1) * n / chunks }
	parallel.ForGrain(chunks, 1, func(c int) {
		cnt := counts[c*shards : (c+1)*shards]
		for j := range cnt {
			cnt[j] = 0
		}
		lo, hi := bounds(c)
		for i := lo; i < hi; i++ {
			id := shardIndex(items[i], shards)
			ids[i] = uint16(id)
			cnt[id]++
		}
	})
	// offsets[c*shards+j]: where chunk c starts writing within shard j's
	// batch.
	totals := growInts(&ps.totals, shards)
	for j := range totals {
		totals[j] = 0
	}
	offsets := growInts(&ps.offsets, chunks*shards)
	for c := 0; c < chunks; c++ {
		for j := 0; j < shards; j++ {
			offsets[c*shards+j] = totals[j]
			totals[j] += counts[c*shards+j]
		}
	}
	if cap(ps.out) < shards {
		ps.out = make([][]uint64, shards)
	}
	out := ps.out[:shards]
	buf := grow(&ps.buf, n)
	start := 0
	for j := range out {
		out[j] = buf[start : start+totals[j] : start+totals[j]]
		start += totals[j]
	}
	parallel.ForGrain(chunks, 1, func(c int) {
		off := offsets[c*shards : (c+1)*shards]
		lo, hi := bounds(c)
		for i := lo; i < hi; i++ {
			j := ids[i]
			out[j][off[j]] = items[i]
			off[j]++
		}
	})
	return out
}

// grow returns buf resized to n, reallocating only when capacity grew.
//
//agglint:hotpath
func grow(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// partitionByShard is the standalone form of partition, used by tests;
// the ingest path goes through the Sharded instance's reused scratch.
func partitionByShard(items []uint64, shards int) [][]uint64 {
	var ps partScratch
	return ps.partition(items, shards)
}

// ProcessBatch hash-partitions the minibatch and ingests every shard's
// sub-batch concurrently, each shard running its own internally-parallel
// ingestion on the shared worker budget. It returns once all shards have
// absorbed their share.
func (s *Sharded) ProcessBatch(items []uint64) error {
	return s.ingestErr(len(items), func() error {
		if len(s.shards) == 0 {
			return fmt.Errorf("%w: empty sharded aggregate", ErrBadParam)
		}
		if len(items) == 0 {
			return nil
		}
		s.invalidateSnap() // even a partial failure mutates some shards
		parts := s.part.partition(items, len(s.shards))
		errs := make([]error, len(parts))
		parallel.ForGrain(len(parts), 1, func(i int) {
			if len(parts[i]) == 0 {
				return
			}
			if err := s.shards[i].ProcessBatch(parts[i]); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		})
		return errors.Join(errs...)
	})
}

// SpaceWords reports the summed footprint of all shards in 64-bit words.
func (s *Sharded) SpaceWords() (w int) {
	s.read(func() {
		for _, sh := range s.shards {
			w += sh.SpaceWords()
		}
	})
	return w
}

// Estimate routes the point query to the item's owner shard — no merge
// needed: with disjoint keyspaces all of the item's mass lives there,
// and the shard's shorter sub-stream only tightens the εm bound.
func (s *Sharded) Estimate(item uint64) (est int64) {
	s.read(func() {
		if len(s.shards) == 0 {
			return
		}
		if pe, ok := s.shards[shardIndex(item, len(s.shards))].(PointEstimator); ok {
			est = pe.Estimate(item)
		}
	})
	return est
}

// TopK unions the shards' per-shard top k and keeps the k largest:
// exact relative to the shard summaries, because every item's counter
// lives in exactly one shard.
func (s *Sharded) TopK(k int) (out []ItemCount) {
	s.read(func() {
		for _, sh := range s.shards {
			if hh, ok := sh.(HeavyHitterSource); ok {
				out = append(out, hh.TopK(k)...)
			}
		}
	})
	sortByCountDesc(out)
	if k < 0 {
		k = 0
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// HeavyHitters answers through the cached merged view: the φ threshold
// is relative to the global stream length, which only the merged summary
// knows.
func (s *Sharded) HeavyHitters(phi float64) (out []ItemCount) {
	s.read(func() {
		merged, err := s.mergedView()
		if err != nil {
			return
		}
		if hh, ok := merged.(HeavyHitterSource); ok {
			out = hh.HeavyHitters(phi)
		}
	})
	return out
}

// RangeCount sums the shards' range counts: the shards partition the
// stream, every level sketch only overcounts, so the sum keeps the
// one-sided guarantee at the global m.
func (s *Sharded) RangeCount(lo, hi uint64) (total int64) {
	s.read(func() {
		for _, sh := range s.shards {
			if re, ok := sh.(RangeEstimator); ok {
				total += re.RangeCount(lo, hi)
			}
		}
	})
	return total
}

// Quantile answers through the cached merged view, whose binary search
// needs the global prefix counts.
func (s *Sharded) Quantile(q float64) (out uint64) {
	s.read(func() {
		merged, err := s.mergedView()
		if err != nil {
			return
		}
		if re, ok := merged.(RangeEstimator); ok {
			out = re.Quantile(q)
		}
	})
	return out
}

// cloneMergeable deep-copies one of the mergeable kinds under its read
// lock — the cheap memcpy path Snapshot uses for shard 0, avoiding a
// gob round trip per query.
func cloneMergeable(agg Aggregate) (Aggregate, bool) {
	switch a := agg.(type) {
	case *FreqEstimator:
		out := &FreqEstimator{}
		a.read(func() { out.impl, out.streamLen = a.impl.Clone(), a.streamLen })
		return out, true
	case *CountMin:
		out := &CountMin{}
		a.read(func() { out.impl, out.streamLen = a.impl.Clone(), a.streamLen })
		return out, true
	case *CountMinRange:
		out := &CountMinRange{}
		a.read(func() { out.impl, out.streamLen = a.impl.Clone(), a.streamLen })
		return out, true
	case *CountSketch:
		out := &CountSketch{}
		a.read(func() { out.impl, out.streamLen = a.impl.Clone(), a.streamLen })
		return out, true
	}
	return nil, false
}

// invalidateSnap marks the cached merged view stale. Callers hold the
// gate's write lock, so no reader can be rebuilding concurrently.
func (s *Sharded) invalidateSnap() {
	s.snapMu.Lock()
	s.snap = nil
	s.snapMu.Unlock()
}

// mergedView returns the cached merge of all shards, rebuilding it if an
// ingest invalidated it. Callers hold the gate's read (or write) lock;
// the returned aggregate is shared and must be treated as read-only —
// Snapshot clones it before handing it out.
func (s *Sharded) mergedView() (Aggregate, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snap != nil {
		s.snapHits.Add(1)
		return s.snap, nil
	}
	s.snapMisses.Add(1)
	merged, err := s.mergeShards()
	if err != nil {
		return nil, err
	}
	s.snap = merged
	return merged, nil
}

// MergeCacheStats reports how often global-summary queries
// (HeavyHitters, Quantile, Snapshot) were served from the cached merged
// view vs. paying the S-way merge.
func (s *Sharded) MergeCacheStats() (hits, misses int64) {
	return s.snapHits.Load(), s.snapMisses.Load()
}

// mergeShards clones shard 0 and folds the rest in with Merge. Callers
// hold the gate's read (or write) lock.
func (s *Sharded) mergeShards() (Aggregate, error) {
	if len(s.shards) == 0 {
		return nil, fmt.Errorf("%w: empty sharded aggregate", ErrBadParam)
	}
	merged, ok := cloneMergeable(s.shards[0])
	if !ok {
		return nil, fmt.Errorf("%w: %s does not support merging", ErrBadParam, s.inner)
	}
	m := merged.(Merger) // every cloneMergeable kind is a Merger
	for i, sh := range s.shards[1:] {
		if err := m.Merge(sh); err != nil {
			return nil, fmt.Errorf("streamagg: merging shard %d: %w", i+1, err)
		}
	}
	return merged, nil
}

// Snapshot merges all shards into one standalone aggregate of the inner
// kind — a consistent global summary as of the last minibatch boundary.
// The merge is served from the query cache when it is still valid; the
// returned snapshot is always detached: it shares no state with the
// shards (or the cache) and the caller may query or mutate it freely.
func (s *Sharded) Snapshot() (Aggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	merged, err := s.mergedView()
	if err != nil {
		return nil, err
	}
	snap, ok := cloneMergeable(merged)
	if !ok {
		return nil, fmt.Errorf("%w: %s does not support merging", ErrBadParam, s.inner)
	}
	return snap, nil
}

// Merge absorbs another Sharded aggregate shard-by-shard. Both operands
// must share the inner kind and the shard count: shardIndex is fixed, so
// equal shard counts mean shard i of both sides holds the same keyspace
// slice and the per-shard merges preserve the disjoint-keyspace routing
// that point queries rely on. Mismatched layouts (or a self-merge)
// return an error wrapping ErrIncompatibleMerge; the receiver is
// unchanged on any error — the merge runs on clones and is installed
// only when every shard pair succeeded.
func (s *Sharded) Merge(other Aggregate) error {
	o, ok := other.(*Sharded)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into %s",
			ErrIncompatibleMerge, other.Kind(), KindSharded)
	}
	if o == s {
		return fmt.Errorf("%w: cannot merge an aggregate with itself", ErrIncompatibleMerge)
	}

	// Snapshot the argument under its own gate first, before taking our
	// write lock — the same order freq.go uses, so a concurrent
	// s.Merge(o) / o.ProcessBatch pair cannot deadlock. (Concurrent
	// mutual merges remain unsupported, as for every Merger.)
	var (
		oInner   Kind
		oShards  []Aggregate
		oLen     int64
		cloneErr error
	)
	o.read(func() {
		oInner, oLen = o.inner, o.streamLen
		oShards = make([]Aggregate, len(o.shards))
		for i, sh := range o.shards {
			c, ok := cloneMergeable(sh)
			if !ok {
				cloneErr = fmt.Errorf("%w: %s does not support merging", ErrBadParam, o.inner)
				return
			}
			oShards[i] = c
		}
	})
	if cloneErr != nil {
		return cloneErr
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if oInner != s.inner {
		return fmt.Errorf("%w: sharded inner kinds differ (%s vs %s)",
			ErrIncompatibleMerge, s.inner, oInner)
	}
	if len(oShards) != len(s.shards) {
		return fmt.Errorf("%w: shard counts differ (%d vs %d)",
			ErrIncompatibleMerge, len(s.shards), len(oShards))
	}
	merged := make([]Aggregate, len(s.shards))
	for i, sh := range s.shards {
		c, ok := cloneMergeable(sh)
		if !ok {
			return fmt.Errorf("%w: %s does not support merging", ErrBadParam, s.inner)
		}
		if err := c.(Merger).Merge(oShards[i]); err != nil {
			return fmt.Errorf("streamagg: merging shard %d: %w", i, err)
		}
		merged[i] = c
	}
	s.invalidateSnap()
	s.shards = merged
	s.streamLen += oLen
	return nil
}

// shardedState is the body of a sharded checkpoint: the inner kind plus
// each shard's own kind-tagged checkpoint, in shard order.
type shardedState struct {
	Inner       string
	Checkpoints [][]byte
}

// MarshalBinary checkpoints the whole shard set atomically: taken under
// the wrapper's gate, it captures every shard at the same minibatch
// boundary in one envelope.
func (s *Sharded) MarshalBinary() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := shardedState{Inner: string(s.inner)}
	for i, sh := range s.shards {
		ckpt, err := sh.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("streamagg: checkpointing shard %d: %w", i, err)
		}
		st.Checkpoints = append(st.Checkpoints, ckpt)
	}
	return seal(KindSharded, s.streamLen, st)
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary,
// rebuilding every shard. It is valid on a zero-value Sharded.
func (s *Sharded) UnmarshalBinary(data []byte) error {
	var st shardedState
	env, err := open(KindSharded, data, &st)
	if err != nil {
		return err
	}
	inner := Kind(st.Inner)
	if !shardable[inner] {
		return fmt.Errorf("%w: kind %q is not shardable", ErrBadParam, st.Inner)
	}
	if len(st.Checkpoints) < 1 || len(st.Checkpoints) > maxShards {
		return fmt.Errorf("%w: sharded checkpoint has %d shards (want 1..%d)",
			ErrBadParam, len(st.Checkpoints), maxShards)
	}
	shards := make([]Aggregate, len(st.Checkpoints))
	for i, ckpt := range st.Checkpoints {
		agg, err := zeroAggregate(inner)
		if err != nil {
			return err
		}
		if err := agg.UnmarshalBinary(ckpt); err != nil {
			return fmt.Errorf("streamagg: restoring shard %d: %w", i, err)
		}
		shards[i] = agg
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateSnap()
	s.inner = inner
	s.shards = shards
	s.streamLen = env.StreamLen
	return nil
}
