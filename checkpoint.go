package streamagg

// Checkpointing. The discretized-stream model this library implements is
// the one Spark Streaming popularized [ZDL+13], where fault tolerance
// comes from checkpointing operator state between minibatches. Every
// aggregate therefore implements encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler: MarshalBinary between two ProcessBatch
// calls captures the full state; UnmarshalBinary restores an estimator
// that continues exactly where the original left off (identical
// estimates on identical suffixes).

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/bcount"
	"repro/internal/cms"
	"repro/internal/countsketch"
	"repro/internal/mg"
	"repro/internal/swfreq"
	"repro/internal/wsum"
)

// checkpointMagic guards against feeding one aggregate's checkpoint to
// another type.
type envelope struct {
	Kind string
	Body []byte
}

func sealState(kind string, state any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(state); err != nil {
		return nil, fmt.Errorf("streamagg: encoding %s state: %w", kind, err)
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(envelope{Kind: kind, Body: body.Bytes()}); err != nil {
		return nil, fmt.Errorf("streamagg: sealing %s checkpoint: %w", kind, err)
	}
	return out.Bytes(), nil
}

func openState(kind string, data []byte, state any) error {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return fmt.Errorf("streamagg: malformed checkpoint: %w", err)
	}
	if env.Kind != kind {
		return fmt.Errorf("%w: checkpoint is for %q, not %q", ErrBadParam, env.Kind, kind)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Body)).Decode(state); err != nil {
		return fmt.Errorf("streamagg: decoding %s state: %w", kind, err)
	}
	return nil
}

// MarshalBinary checkpoints the counter between minibatches.
func (c *BasicCounter) MarshalBinary() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sealState("basic-counter", c.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *BasicCounter) UnmarshalBinary(data []byte) error {
	var st bcount.State
	if err := openState("basic-counter", data, &st); err != nil {
		return err
	}
	impl, err := bcount.FromState(st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl = impl
	return nil
}

// MarshalBinary checkpoints the summer between minibatches.
func (s *WindowSum) MarshalBinary() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sealState("window-sum", s.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (s *WindowSum) UnmarshalBinary(data []byte) error {
	var st wsum.State
	if err := openState("window-sum", data, &st); err != nil {
		return err
	}
	impl, err := wsum.FromState(st)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.impl = impl
	return nil
}

// MarshalBinary checkpoints the estimator between minibatches.
func (f *FreqEstimator) MarshalBinary() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return sealState("freq-estimator", f.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (f *FreqEstimator) UnmarshalBinary(data []byte) error {
	var st mg.State
	if err := openState("freq-estimator", data, &st); err != nil {
		return err
	}
	impl, err := mg.FromState(st)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.impl = impl
	return nil
}

// MarshalBinary checkpoints the estimator between minibatches.
func (s *SlidingFreqEstimator) MarshalBinary() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sealState("sliding-freq-estimator", s.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (s *SlidingFreqEstimator) UnmarshalBinary(data []byte) error {
	var st swfreq.State
	if err := openState("sliding-freq-estimator", data, &st); err != nil {
		return err
	}
	impl, err := swfreq.FromState(st)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.impl = impl
	return nil
}

// MarshalBinary checkpoints the sketch between minibatches.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sealState("count-min", c.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *CountMin) UnmarshalBinary(data []byte) error {
	var st cms.State
	if err := openState("count-min", data, &st); err != nil {
		return err
	}
	impl, err := cms.FromState(st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl = impl
	return nil
}

// MarshalBinary checkpoints the range sketch between minibatches.
func (c *CountMinRange) MarshalBinary() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sealState("count-min-range", c.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *CountMinRange) UnmarshalBinary(data []byte) error {
	var st cms.RangeState
	if err := openState("count-min-range", data, &st); err != nil {
		return err
	}
	impl, err := cms.RangeFromState(st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl = impl
	return nil
}

// MarshalBinary checkpoints the sketch between minibatches.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sealState("count-sketch", c.impl.State())
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *CountSketch) UnmarshalBinary(data []byte) error {
	var st countsketch.State
	if err := openState("count-sketch", data, &st); err != nil {
		return err
	}
	impl, err := countsketch.FromState(st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.impl = impl
	return nil
}
