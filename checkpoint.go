package streamagg

// Checkpointing. The discretized-stream model this library implements is
// the one Spark Streaming popularized [ZDL+13], where fault tolerance
// comes from checkpointing operator state between minibatches. Every
// aggregate therefore implements encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler: MarshalBinary between two ProcessBatch
// calls captures the full state; UnmarshalBinary restores an estimator
// that continues exactly where the original left off (identical
// estimates on identical suffixes).
//
// The locking, kind-tagged envelope, and stream-position plumbing live
// in gate.go (marshalAgg/unmarshalAgg); each aggregate only binds its
// internal State/FromState pair here. Pipeline checkpointing, which
// composes these per-aggregate envelopes, lives in pipeline.go.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/bcount"
	"repro/internal/cms"
	"repro/internal/countsketch"
	"repro/internal/mg"
	"repro/internal/swfreq"
	"repro/internal/wsum"
)

// CheckpointKind reports the kind tag of a checkpoint envelope without
// restoring it — how the federation layer tells a whole-pipeline
// payload from a single-aggregate one before picking a decoder.
func CheckpointKind(data []byte) (Kind, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return "", fmt.Errorf("streamagg: malformed checkpoint: %w", err)
	}
	return Kind(env.Kind), nil
}

// UnmarshalAggregate rebuilds a single aggregate from its kind-tagged
// checkpoint envelope, dispatching on the embedded kind. Whole-pipeline
// envelopes are rejected — use UnmarshalPipeline for those.
func UnmarshalAggregate(data []byte) (Aggregate, error) {
	kind, err := CheckpointKind(data)
	if err != nil {
		return nil, err
	}
	agg, err := zeroAggregate(kind)
	if err != nil {
		return nil, err
	}
	if err := agg.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return agg, nil
}

// UnmarshalPipeline rebuilds a whole pipeline from a checkpoint made by
// Pipeline.MarshalBinary.
func UnmarshalPipeline(data []byte) (*Pipeline, error) {
	p := NewPipeline()
	if err := p.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return p, nil
}

// MarshalBinary checkpoints the counter between minibatches.
func (c *BasicCounter) MarshalBinary() ([]byte, error) {
	return marshalAgg(&c.gate, KindBasicCounter, func() bcount.State { return c.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *BasicCounter) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&c.gate, KindBasicCounter, data, bcount.FromState,
		func(impl *bcount.Counter) { c.impl = impl })
}

// MarshalBinary checkpoints the summer between minibatches.
func (s *WindowSum) MarshalBinary() ([]byte, error) {
	return marshalAgg(&s.gate, KindWindowSum, func() wsum.State { return s.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (s *WindowSum) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&s.gate, KindWindowSum, data, wsum.FromState,
		func(impl *wsum.Summer) { s.impl = impl })
}

// MarshalBinary checkpoints the estimator between minibatches.
func (f *FreqEstimator) MarshalBinary() ([]byte, error) {
	return marshalAgg(&f.gate, KindFreq, func() mg.State { return f.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (f *FreqEstimator) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&f.gate, KindFreq, data, mg.FromState,
		func(impl *mg.Summary) { f.impl = impl })
}

// MarshalBinary checkpoints the estimator between minibatches.
func (s *SlidingFreqEstimator) MarshalBinary() ([]byte, error) {
	return marshalAgg(&s.gate, KindSlidingFreq, func() swfreq.State { return s.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (s *SlidingFreqEstimator) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&s.gate, KindSlidingFreq, data, swfreq.FromState,
		func(impl *swfreq.Estimator) { s.impl = impl })
}

// MarshalBinary checkpoints the sketch between minibatches.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	return marshalAgg(&c.gate, KindCountMin, func() cms.State { return c.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *CountMin) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&c.gate, KindCountMin, data, cms.FromState,
		func(impl *cms.Sketch) { c.impl = impl })
}

// MarshalBinary checkpoints the range sketch between minibatches.
func (c *CountMinRange) MarshalBinary() ([]byte, error) {
	return marshalAgg(&c.gate, KindCountMinRange, func() cms.RangeState { return c.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *CountMinRange) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&c.gate, KindCountMinRange, data, cms.RangeFromState,
		func(impl *cms.RangeSketch) { c.impl = impl })
}

// MarshalBinary checkpoints the sketch between minibatches.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	return marshalAgg(&c.gate, KindCountSketch, func() countsketch.State { return c.impl.State() })
}

// UnmarshalBinary restores a checkpoint made by MarshalBinary.
func (c *CountSketch) UnmarshalBinary(data []byte) error {
	return unmarshalAgg(&c.gate, KindCountSketch, data, countsketch.FromState,
		func(impl *countsketch.Sketch) { c.impl = impl })
}
